"""Program synthesis: compile a :class:`SpecProfile` into real assembly.

The trace-stream models (``repro.workloads.synthetic``) are fast but not
*executable*. This module closes that gap: it emits an actual program —
regions as callable code blocks with cold entry traces and a hot loop,
driven by a precomputed visit schedule in the data segment — whose
dynamic trace behaviour follows the same phased-region model. The result
runs on the functional and cycle simulators like any kernel, so
SPEC-shaped code can feed fault-injection campaigns and pipeline-level
measurements, not just trace statistics.

Scale: profiles are synthesized at a reduced ``max_static_traces`` (full
gcc would be ~150k instructions of text); the *shape* — region structure,
popularity skew, visit iterations, trace lengths — is preserved.

Layout of the generated program::

    main:        walk the schedule table: (region_id, iterations) pairs,
                 terminated by -1; call regions via a function-pointer
                 table (jalr)
    region_k:    cold entry blocks (once per visit), then a hot loop of
                 trace-sized blocks iterated `iterations` times
    .data:       region pointer table, schedule, per-region scratch words

Every block is a run of ALU/memory instructions ending in a control
transfer, so its trace boundaries are exactly the block boundaries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..isa.assembler import assemble
from ..isa.program import Program
from ..utils.rng import WeightedSampler, make_rng, zipf_weights
from .spec_profiles import SpecProfile, get_profile

#: Registers block bodies may use freely ($t0..$t7).
_WORK_REGS = [f"$t{i}" for i in range(8)]


@dataclass(frozen=True)
class SynthesisPlan:
    """Resolved (scaled) generation parameters."""

    profile: SpecProfile
    regions: int
    hot_blocks_per_region: int
    cold_blocks_per_region: int
    target_instructions: int
    seed: int


def _plan(profile: SpecProfile, seed: int, target_instructions: int,
          max_static_traces: int) -> SynthesisPlan:
    scale = min(1.0, max_static_traces / profile.static_traces)
    regions = max(2, int(round(profile.regions * scale)))
    per_region = max(2, int(round(profile.static_traces * scale / regions)))
    hot = min(profile.hot_traces_per_region, per_region - 1)
    cold = max(1, per_region - hot - 1)  # -1 for the return trace
    return SynthesisPlan(
        profile=profile,
        regions=regions,
        hot_blocks_per_region=max(1, hot),
        cold_blocks_per_region=cold,
        target_instructions=target_instructions,
        seed=seed,
    )


def _block_body(rng: random.Random, length: int,
                scratch_label: str) -> List[str]:
    """``length - 1`` filler instructions (the caller adds the
    terminating control transfer)."""
    lines: List[str] = []
    for _ in range(max(0, length - 1)):
        choice = rng.randrange(8)
        rd = rng.choice(_WORK_REGS)
        rs = rng.choice(_WORK_REGS)
        rt = rng.choice(_WORK_REGS)
        if choice == 0:
            lines.append(f"    add  {rd}, {rs}, {rt}")
        elif choice == 1:
            lines.append(f"    xor  {rd}, {rs}, {rt}")
        elif choice == 2:
            lines.append(f"    addi {rd}, {rs}, {rng.randrange(-64, 64)}")
        elif choice == 3:
            lines.append(f"    sll  {rd}, {rs}, {rng.randrange(1, 8)}")
        elif choice == 4:
            lines.append(f"    srl  {rd}, {rs}, {rng.randrange(1, 8)}")
        elif choice == 5:
            lines.append(f"    or   {rd}, {rs}, {rt}")
        elif choice == 6:
            offset = rng.randrange(8) * 4
            lines.append(f"    lw   {rd}, {offset}($s3)")
        else:
            offset = rng.randrange(8) * 4
            lines.append(f"    sw   {rs}, {offset}($s3)")
    return lines


def _draw_length(rng: random.Random, profile: SpecProfile) -> int:
    length = int(round(rng.gauss(profile.mean_trace_length,
                                 profile.trace_length_spread)))
    # Leave room for the terminating branch; cap below the 16 limit so
    # block boundaries, not the length limit, define traces.
    return min(15, max(2, length))


def _schedule(plan: SynthesisPlan) -> List[Tuple[int, int]]:
    """The (region, iterations) visit sequence, phased like the model."""
    profile = plan.profile
    rng = make_rng(plan.seed, "synth-schedule", profile.name)
    weights = zipf_weights(plan.regions, profile.region_zipf)
    rng.shuffle(weights)
    sampler = WeightedSampler(weights)
    # Estimate per-visit work to bound the schedule length.
    per_hot_iter = plan.hot_blocks_per_region * profile.mean_trace_length
    schedule: List[Tuple[int, int]] = []
    emitted = 0.0
    while emitted < plan.target_instructions:
        region = sampler.sample(rng)
        iterations = max(
            1, int(rng.expovariate(1.0 / profile.mean_visit_iterations)))
        iterations = min(iterations, 127)
        schedule.append((region, iterations))
        emitted += (plan.cold_blocks_per_region * profile.mean_trace_length
                    + iterations * per_hot_iter)
    return schedule


def synthesize_source(profile: SpecProfile, seed: int = 7,
                      target_instructions: int = 60_000,
                      max_static_traces: int = 192) -> str:
    """Generate the assembly source for a scaled, executable replica."""
    plan = _plan(profile, seed, target_instructions, max_static_traces)
    rng = make_rng(seed, "synth-code", profile.name)
    schedule = _schedule(plan)

    # .text is emitted first so region labels exist when the .data
    # section's function-pointer table references them (the assembler
    # resolves .word labels at the point of definition).
    lines: List[str] = []
    lines.append(".text")
    lines.append("main:")
    lines.append("    la   $s6, schedule")
    lines.append("    la   $s7, region_table")
    lines.append("    li   $s2, 0              # checksum accumulator")
    lines.append("sched_loop:")
    lines.append("    lw   $s5, 0($s6)")
    lines.append("    bltz $s5, sched_done")
    lines.append("    lw   $a0, 4($s6)")
    lines.append("    addiu $s6, $s6, 8")
    lines.append("    sll  $t9, $s5, 2")
    lines.append("    add  $t9, $t9, $s7")
    lines.append("    lw   $t9, 0($t9)")
    lines.append("    la   $s3, scratch")
    lines.append("    sll  $s4, $s5, 5         # 32-byte region scratch")
    lines.append("    add  $s3, $s3, $s4")
    lines.append("    jalr $ra, $t9")
    lines.append("    add  $s2, $s2, $v0")
    lines.append("    b    sched_loop")
    lines.append("sched_done:")
    lines.append("    la   $a0, done_msg")
    lines.append("    li   $v0, 4")
    lines.append("    syscall")
    lines.append("    andi $a0, $s2, 0xFFFF")
    lines.append("    li   $v0, 1")
    lines.append("    syscall")
    lines.append("    li   $v0, 10")
    lines.append("    syscall")

    for index in range(plan.regions):
        lines.append(f"region_{index}:")
        # Cold entry blocks: executed once per visit.
        for cold in range(plan.cold_blocks_per_region):
            length = _draw_length(rng, profile)
            lines.extend(_block_body(rng, length, f"r{index}"))
            # Never-taken branch terminates the trace without redirecting.
            lines.append(f"    bne  $zero, $zero, region_{index}_c{cold}")
            lines.append(f"region_{index}_c{cold}:")
        lines.append("    move $t8, $a0")
        lines.append(f"region_{index}_loop:")
        # Hot loop body: each block one trace.
        for hot in range(plan.hot_blocks_per_region - 1):
            length = _draw_length(rng, profile)
            lines.extend(_block_body(rng, length, f"r{index}"))
            lines.append(f"    bne  $zero, $zero, region_{index}_h{hot}")
            lines.append(f"region_{index}_h{hot}:")
        length = _draw_length(rng, profile)
        lines.extend(_block_body(rng, length, f"r{index}"))
        lines.append("    addi $t8, $t8, -1")
        lines.append(f"    bnez $t8, region_{index}_loop")
        lines.append("    move $v0, $t0")
        lines.append("    jr   $ra")

    lines.append(".data")
    lines.append("region_table:")
    for index in range(plan.regions):
        lines.append(f"    .word region_{index}")
    lines.append("schedule:")
    for region, iterations in schedule:
        lines.append(f"    .word {region}, {iterations}")
    lines.append("    .word -1, 0")
    lines.append(f"scratch: .space {plan.regions * 32}")
    lines.append("done_msg: .asciiz \"synth done \"")

    return "\n".join(lines) + "\n"


def synthesize_program(name: str, seed: int = 7,
                       target_instructions: int = 60_000,
                       max_static_traces: int = 192) -> Program:
    """Scaled executable replica of a SPEC2K profile, assembled."""
    profile = get_profile(name)
    source = synthesize_source(profile, seed=seed,
                               target_instructions=target_instructions,
                               max_static_traces=max_static_traces)
    return assemble(source, name=f"{name}-mini")


def mini_spec_kernel(name: str, seed: int = 7,
                     target_instructions: int = 20_000,
                     max_static_traces: int = 128):
    """Wrap a synthesized replica as a :class:`Kernel` (not registered).

    Lets the fault-injection machinery — which consumes kernels — run
    Figure 8-style campaigns on SPEC-shaped code.
    """
    from .kernels.base import Kernel
    profile = get_profile(name)
    return Kernel(
        name=f"{name}-mini",
        category=profile.category,
        description=f"synthesized replica of {name} "
                    f"(scaled to <= {max_static_traces} static traces)",
        source=synthesize_source(
            profile, seed=seed, target_instructions=target_instructions,
            max_static_traces=max_static_traces),
        expected_output=None,
    )
