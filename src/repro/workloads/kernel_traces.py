"""Dynamic trace extraction from real kernel executions.

Bridges the two workload tiers: run a kernel on the golden functional
simulator, group its committed instruction stream into ITR traces, and
hand back the same :class:`TraceEvent` stream the synthetic models
produce — so every trace-statistics experiment (characterization,
coverage, energy) can also run on *real* programs.
"""

from __future__ import annotations

from typing import List

from ..arch.functional import FunctionalSimulator
from ..isa.decode_signals import decode
from ..itr.signature import SignatureGenerator, TraceSignature
from ..itr.trace import TraceEvent, TraceProfile, traces_of_instruction_stream
from .kernels import Kernel


def kernel_trace_events(kernel: Kernel,
                        max_steps: int = 3_000_000,
                        max_trace_length: int = 16) -> List[TraceEvent]:
    """Execute ``kernel`` functionally and return its dynamic trace stream.

    Trace identity and boundaries follow the same rules the pipeline's
    signature generator applies (control transfer / trap / length limit),
    so coverage results computed from this stream match what the
    ITR-protected pipeline would observe.
    """
    simulator = FunctionalSimulator(kernel.program(), inputs=kernel.inputs)
    program = simulator.program

    def stream():
        steps = 0
        while not simulator.halted and steps < max_steps:
            pc = simulator.state.pc
            signals = decode(program.instruction_at(pc))
            yield pc, signals.ends_trace
            simulator.step()
            steps += 1

    return list(traces_of_instruction_stream(
        stream(), max_length=max_trace_length))


def kernel_trace_signatures(kernel: Kernel,
                            max_steps: int = 3_000_000,
                            max_trace_length: int = 16,
                            ) -> List[TraceSignature]:
    """Execute ``kernel`` and return its completed trace signatures.

    Unlike :func:`kernel_trace_events` this folds every committed
    instruction through :class:`SignatureGenerator`, so each returned
    :class:`TraceSignature` carries the 64-bit XOR signature the
    ITR cache would store.  A trace still open when the program halts
    (the exit trap always closes the last one, so this only happens if
    ``max_steps`` cuts execution short) is flushed and included.
    """
    simulator = FunctionalSimulator(kernel.program(), inputs=kernel.inputs)
    program = simulator.program
    generator = SignatureGenerator(max_length=max_trace_length)
    signatures: List[TraceSignature] = []
    steps = 0
    while not simulator.halted and steps < max_steps:
        pc = simulator.state.pc
        completed = generator.add(pc, decode(program.instruction_at(pc)))
        if completed is not None:
            signatures.append(completed)
        simulator.step()
        steps += 1
    if generator.in_progress and generator.partial_start_pc is not None:
        signatures.append(TraceSignature(
            start_pc=generator.partial_start_pc,
            signature=generator.partial_signature,
            length=generator.partial_length,
        ))
    return signatures


def kernel_trace_profile(kernel: Kernel,
                         max_steps: int = 3_000_000,
                         max_trace_length: int = 16) -> TraceProfile:
    """Characterize a kernel's repetition behaviour (Figures 1/3 for it)."""
    profile = TraceProfile()
    profile.record_stream(kernel_trace_events(
        kernel, max_steps=max_steps, max_trace_length=max_trace_length))
    return profile
