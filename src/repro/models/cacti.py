"""minicacti: a small analytical SRAM energy/area model.

The paper feeds two cache configurations into CACTI 3.0 [17] at 0.18um
and reports the resulting per-access energies:

* IBM Power4-style I-cache — 64 KB, direct-mapped, 128 B lines, one
  read/write port: **0.87 nJ/access**
* ITR cache — 8 KB (1024 x 64-bit signatures), 2-way, 8 B lines: **0.58
  nJ/access** with one shared read/write port, **0.84 nJ** with separate
  read and write ports.

CACTI itself is a large C program; for the energy *accounting* the paper
does (energy = accesses x energy-per-access), a two-parameter analytical
approximation anchored to those published numbers reproduces the inputs
exactly and interpolates sensibly for the other ITR cache geometries the
design-space sweep explores:

``E(size, assoc, ports) = (E_base + k * sqrt(KB) * assoc_factor(assoc))
* port_factor(ports)``

The square-root term tracks bitline/wordline length growth with array
area; the associativity factor charges the extra way comparators and the
wider data read-out; the port factor is CACTI's published ratio for the
dual-ported ITR cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

#: Published CACTI anchor points (paper Section 5).
ICACHE_NJ_PER_ACCESS = 0.87
ITR_NJ_PER_ACCESS_SHARED_PORT = 0.58
ITR_NJ_PER_ACCESS_SPLIT_PORTS = 0.84

#: The port-energy ratio implied by the paper's two ITR numbers.
SPLIT_PORT_FACTOR = ITR_NJ_PER_ACCESS_SPLIT_PORTS / ITR_NJ_PER_ACCESS_SHARED_PORT


def _assoc_factor(assoc: int) -> float:
    """Relative energy of way-parallel read-out (1.0 for direct-mapped)."""
    if assoc <= 1:
        return 1.0
    # Each doubling of ways adds comparators and muxing; sub-linear.
    return 1.0 + 0.15 * math.log2(assoc)


# Solve the two-parameter model from the two anchors:
#   E_base + k * sqrt(64) * 1.0          = 0.87   (I-cache)
#   E_base + k * sqrt(8) * assoc(2)      = 0.58   (ITR cache)
_K = (ICACHE_NJ_PER_ACCESS - ITR_NJ_PER_ACCESS_SHARED_PORT) / (
    math.sqrt(64.0) - math.sqrt(8.0) * _assoc_factor(2))
_E_BASE = ICACHE_NJ_PER_ACCESS - _K * math.sqrt(64.0)


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry passed to the energy/area model."""

    size_bytes: int
    assoc: int = 1          # 0 = fully associative
    ports: int = 1          # 1 = shared rd/wr, 2 = separate rd + wr

    def __post_init__(self) -> None:
        if self.size_bytes < 64:
            raise ConfigError(f"size_bytes too small: {self.size_bytes}")
        if self.ports not in (1, 2):
            raise ConfigError(f"ports must be 1 or 2, got {self.ports}")

    @property
    def size_kb(self) -> float:
        return self.size_bytes / 1024.0

    @property
    def effective_assoc(self) -> int:
        if self.assoc == 0:
            # Fully associative: model as the highest way count we charge
            # for (comparator energy saturates in this approximation).
            return 32
        return self.assoc


def energy_per_access_nj(geometry: CacheGeometry) -> float:
    """Per-access dynamic energy in nanojoules (0.18um, CACTI-anchored)."""
    base = _E_BASE + _K * math.sqrt(geometry.size_kb) \
        * _assoc_factor(geometry.effective_assoc)
    if geometry.ports == 2:
        base *= SPLIT_PORT_FACTOR
    return base


#: G5 die-photo area anchor (paper Section 5): a BTB-like structure of
#: 2048 entries x 35 bits occupies 1.5 cm x 0.2 cm = 0.3 cm^2.
G5_BTB_BITS = 2048 * 35
G5_BTB_AREA_CM2 = 0.3
#: The G5 I-unit (fetch + decode) occupies 1.5 cm x 1.4 cm = 2.1 cm^2.
G5_IUNIT_AREA_CM2 = 2.1


def array_area_cm2(total_bits: int) -> float:
    """Area of an SRAM array in G5 technology, die-photo anchored.

    Linear in bit count relative to the BTB anchor — the same scaling the
    paper uses when it equates the ITR cache (1024 x 64 b) with the BTB
    (2048 x 35 b): nearly the same bit count, therefore the same area.
    """
    if total_bits < 1:
        raise ConfigError(f"total_bits must be >= 1, got {total_bits}")
    return G5_BTB_AREA_CM2 * total_bits / G5_BTB_BITS
