"""Energy accounting for the ITR-vs-time-redundancy comparison (Figure 9).

The paper's model: the dominant power cost of structural duplication or
conventional time redundancy is fetching every instruction a second time
from the I-cache; the ITR approach instead performs one small ITR-cache
read per trace plus one write per ITR-cache miss. Energy is simply
``accesses x energy-per-access`` with CACTI-anchored per-access values.

Access counts come from a trace stream:

* I-cache accesses — one per up-to-4-instruction fetch group
  (``ceil(length / fetch_width)`` per trace event);
* ITR cache reads — one per dispatched trace;
* ITR cache writes — one per ITR cache miss.

Counts are scaled to the paper's 200M-instruction runs so the mJ
magnitudes are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..itr.coverage import CoverageResult
from ..itr.itr_cache import ItrCacheConfig
from ..itr.trace import TraceEvent
from .cacti import (
    ICACHE_NJ_PER_ACCESS,
    ITR_NJ_PER_ACCESS_SHARED_PORT,
    ITR_NJ_PER_ACCESS_SPLIT_PORTS,
    CacheGeometry,
    energy_per_access_nj,
)

#: Instruction count the paper's Figure 9 integrates over.
PAPER_RUN_INSTRUCTIONS = 200_000_000

#: Fetch-group width used for I-cache access counting.
FETCH_GROUP = 4


@dataclass(frozen=True)
class AccessCounts:
    """Raw access counts measured over a trace stream."""

    instructions: int
    traces: int
    itr_misses: int
    icache_accesses: int

    def scaled_to(self, target_instructions: int) -> "AccessCounts":
        """Linear extrapolation to a longer run (paper: 200M)."""
        if self.instructions == 0:
            return self
        factor = target_instructions / self.instructions
        return AccessCounts(
            instructions=target_instructions,
            traces=int(self.traces * factor),
            itr_misses=int(self.itr_misses * factor),
            icache_accesses=int(self.icache_accesses * factor),
        )


@dataclass(frozen=True)
class EnergyComparison:
    """One benchmark's Figure 9 bars, in millijoules."""

    benchmark: str
    itr_shared_port_mj: float   # "ITR cache 1rd/wr"
    itr_split_ports_mj: float   # "ITR cache 1rd+1wr"
    icache_refetch_mj: float    # "I-cache 1rd/wr": the redundant fetches

    @property
    def itr_advantage(self) -> float:
        """How many times cheaper ITR is than redundant fetching."""
        if self.itr_shared_port_mj == 0:
            return float("inf")
        return self.icache_refetch_mj / self.itr_shared_port_mj


def count_accesses(events: Iterable[TraceEvent],
                   coverage: Optional[CoverageResult] = None) -> AccessCounts:
    """Count accesses over a stream.

    If ``coverage`` (from a prior coverage run over the same stream) is
    supplied, its miss count is reused; otherwise misses must be counted
    separately and this function assumes every trace missed (upper bound).
    """
    instructions = 0
    traces = 0
    icache = 0
    for event in events:
        instructions += event.length
        traces += 1
        icache += -(-event.length // FETCH_GROUP)  # ceil division
    misses = coverage.misses if coverage is not None else traces
    return AccessCounts(instructions=instructions, traces=traces,
                        itr_misses=misses, icache_accesses=icache)


def itr_cache_geometry(config: ItrCacheConfig, ports: int = 1,
                       signature_bits: int = 64) -> CacheGeometry:
    """Geometry of an ITR cache configuration for the energy model."""
    return CacheGeometry(
        size_bytes=config.entries * signature_bits // 8,
        assoc=config.assoc,
        ports=ports,
    )


def compare_energy(benchmark: str, counts: AccessCounts,
                   config: ItrCacheConfig = ItrCacheConfig(),
                   scale_to_paper: bool = True) -> EnergyComparison:
    """Compute one benchmark's Figure 9 bars.

    For the paper's default 1024-entry 2-way configuration the published
    CACTI anchors are used verbatim (0.58 / 0.84 / 0.87 nJ); other
    geometries go through minicacti.
    """
    if scale_to_paper:
        counts = counts.scaled_to(PAPER_RUN_INSTRUCTIONS)
    if config.entries == 1024 and config.assoc == 2:
        shared_nj = ITR_NJ_PER_ACCESS_SHARED_PORT
        split_nj = ITR_NJ_PER_ACCESS_SPLIT_PORTS
    else:
        shared_nj = energy_per_access_nj(itr_cache_geometry(config, ports=1))
        split_nj = energy_per_access_nj(itr_cache_geometry(config, ports=2))
    itr_accesses = counts.traces + counts.itr_misses
    return EnergyComparison(
        benchmark=benchmark,
        itr_shared_port_mj=itr_accesses * shared_nj * 1e-6,
        itr_split_ports_mj=itr_accesses * split_nj * 1e-6,
        icache_refetch_mj=counts.icache_accesses
        * ICACHE_NJ_PER_ACCESS * 1e-6,
    )
