"""Area and power models, anchored to the paper's CACTI/die-photo data."""

from .area import (
    OVERHEAD_BITS,
    SIGNATURE_BITS,
    AreaComparison,
    compare_area,
    itr_cache_area_cm2,
)
from .cacti import (
    G5_BTB_AREA_CM2,
    G5_BTB_BITS,
    G5_IUNIT_AREA_CM2,
    ICACHE_NJ_PER_ACCESS,
    ITR_NJ_PER_ACCESS_SHARED_PORT,
    ITR_NJ_PER_ACCESS_SPLIT_PORTS,
    CacheGeometry,
    array_area_cm2,
    energy_per_access_nj,
)
from .energy import (
    FETCH_GROUP,
    PAPER_RUN_INSTRUCTIONS,
    AccessCounts,
    EnergyComparison,
    compare_energy,
    count_accesses,
    itr_cache_geometry,
)

__all__ = [
    "OVERHEAD_BITS",
    "SIGNATURE_BITS",
    "AreaComparison",
    "compare_area",
    "itr_cache_area_cm2",
    "G5_BTB_AREA_CM2",
    "G5_BTB_BITS",
    "G5_IUNIT_AREA_CM2",
    "ICACHE_NJ_PER_ACCESS",
    "ITR_NJ_PER_ACCESS_SHARED_PORT",
    "ITR_NJ_PER_ACCESS_SPLIT_PORTS",
    "CacheGeometry",
    "array_area_cm2",
    "energy_per_access_nj",
    "FETCH_GROUP",
    "PAPER_RUN_INSTRUCTIONS",
    "AccessCounts",
    "EnergyComparison",
    "compare_energy",
    "count_accesses",
    "itr_cache_geometry",
]
