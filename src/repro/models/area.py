"""Area comparison: ITR cache vs duplicating the I-unit (Section 5).

The paper estimates areas from the IBM S/390 G5 die photo [4][15]:

* the I-unit (fetch + decode) is 1.5 cm x 1.4 cm = **2.1 cm^2** — the cost
  of structural duplication a la the G5;
* a BTB-like array of 2048 x 35 bits is 1.5 cm x 0.2 cm = **0.3 cm^2**,
  and the ITR cache (1024 x 64 bits) has nearly the same bit count, so
  the same area — **about one seventh of the I-unit**.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..itr.itr_cache import ItrCacheConfig
from .cacti import G5_IUNIT_AREA_CM2, array_area_cm2

#: Bits per ITR cache entry: the 64-bit signature (paper Table 2 total).
SIGNATURE_BITS = 64
#: Per-line overhead bits modeled alongside the signature: parity (Section
#: 2.4) + checked flag (Section 2.3 optimization) + valid.
OVERHEAD_BITS = 3


@dataclass(frozen=True)
class AreaComparison:
    """The Section 5 area numbers."""

    itr_cache_cm2: float
    iunit_cm2: float

    @property
    def ratio(self) -> float:
        """How many ITR caches fit in one I-unit (paper: ~7)."""
        return self.iunit_cm2 / self.itr_cache_cm2


def itr_cache_area_cm2(config: ItrCacheConfig = ItrCacheConfig(),
                       include_overhead: bool = False) -> float:
    """Die-photo-anchored area of an ITR cache configuration."""
    bits_per_entry = SIGNATURE_BITS + (OVERHEAD_BITS if include_overhead
                                       else 0)
    # Tag bits: full start PC tags cost 29 bits; the paper's BTB-anchored
    # estimate compares raw payload arrays, so tags are charged only with
    # include_overhead.
    if include_overhead:
        bits_per_entry += 29
    return array_area_cm2(config.entries * bits_per_entry)


def compare_area(config: ItrCacheConfig = ItrCacheConfig(),
                 include_overhead: bool = False) -> AreaComparison:
    """The paper's comparison for a given ITR cache geometry."""
    return AreaComparison(
        itr_cache_cm2=itr_cache_area_cm2(config, include_overhead),
        iunit_cm2=G5_IUNIT_AREA_CM2,
    )
