"""The 64-bit decode-signal vector (paper Table 2).

This module is the heart of the fault model. The decode unit translates a
fetched instruction into the signal vector below; *everything downstream of
decode* (rename, scheduling, execution, memory, commit) consumes only this
vector. The ITR signature is the XOR of these vectors over a trace, and
fault injection flips one randomly chosen bit of one dynamic instruction's
vector.

Field layout (LSB-first bit offsets), reproducing Table 2 exactly:

=========  =====  ======  =======================================
field      width  offset  description
=========  =====  ======  =======================================
opcode     8      0       instruction opcode
flags      12     8       decoded control flags
shamt      5      20      shift amount
rsrc1      5      25      source register operand
rsrc2      5      30      source register operand
rdst       5      35      destination register operand
lat        2      40      execution latency class
imm        16     42      immediate
num_rsrc   2      58      number of source operands
num_rdst   1      60      number of destination operands
mem_size   3      61      size of memory word
=========  =====  ======  =======================================

Total width: 64 bits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..errors import DecodingError
from ..utils.bitops import check_fits, extract, flip_bit, insert
from . import opcodes
from .instruction import Instruction
from .opcodes import FLAG_NAMES, Format, LatencyClass


@dataclass(frozen=True)
class SignalField:
    """One named field of the decode-signal vector."""

    name: str
    width: int
    offset: int
    description: str


def _build_fields() -> Tuple[SignalField, ...]:
    layout = [
        ("opcode", 8, "instruction opcode"),
        ("flags", 12, "decoded control flags (" + ", ".join(FLAG_NAMES) + ")"),
        ("shamt", 5, "shift amount"),
        ("rsrc1", 5, "source register operand"),
        ("rsrc2", 5, "source register operand"),
        ("rdst", 5, "destination register operand"),
        ("lat", 2, "execution latency"),
        ("imm", 16, "immediate"),
        ("num_rsrc", 2, "number of source operands"),
        ("num_rdst", 1, "number of destination operands"),
        ("mem_size", 3, "size of memory word"),
    ]
    fields: List[SignalField] = []
    offset = 0
    for name, width, description in layout:
        fields.append(SignalField(name, width, offset, description))
        offset += width
    if offset != 64:
        raise AssertionError(f"decode-signal layout is {offset} bits, not 64")
    return tuple(fields)


#: The Table 2 field inventory, in bit order.
FIELDS: Tuple[SignalField, ...] = _build_fields()

#: Field lookup by name.
FIELD_BY_NAME: Dict[str, SignalField] = {f.name: f for f in FIELDS}

#: Total signal-vector width in bits (Table 2 bottom row).
TOTAL_WIDTH = 64

_FLAG_BIT: Dict[str, int] = {name: i for i, name in enumerate(FLAG_NAMES)}


def flags_to_bits(flag_names) -> int:
    """Pack a collection of flag names into the 12-bit flags field."""
    bits = 0
    for name in flag_names:
        bits |= 1 << _FLAG_BIT[name]
    return bits


def field_of_bit(bit: int) -> SignalField:
    """Return the field containing global bit position ``bit`` (0..63)."""
    if not 0 <= bit < TOTAL_WIDTH:
        raise ValueError(f"bit {bit} outside 0..{TOTAL_WIDTH - 1}")
    for field in FIELDS:
        if field.offset <= bit < field.offset + field.width:
            return field
    raise AssertionError("unreachable: layout covers all 64 bits")


@dataclass(frozen=True)
class DecodeSignals:
    """An immutable 64-bit decode-signal vector, as named fields.

    Instances are hashable and cheap; fault injection produces a *new*
    vector via :meth:`with_bit_flipped`.
    """

    opcode: int
    flags: int
    shamt: int
    rsrc1: int
    rsrc2: int
    rdst: int
    lat: int
    imm: int
    num_rsrc: int
    num_rdst: int
    mem_size: int

    # -- flag accessors ------------------------------------------------------
    def flag(self, name: str) -> bool:
        """Read one named control flag from the 12-bit flags field."""
        return bool(self.flags & (1 << _FLAG_BIT[name]))

    @property
    def is_int(self) -> bool:
        return self.flag("is_int")

    @property
    def is_fp(self) -> bool:
        return self.flag("is_fp")

    @property
    def is_signed(self) -> bool:
        return self.flag("is_signed")

    @property
    def is_branch(self) -> bool:
        return self.flag("is_branch")

    @property
    def is_uncond(self) -> bool:
        return self.flag("is_uncond")

    @property
    def is_ld(self) -> bool:
        return self.flag("is_ld")

    @property
    def is_st(self) -> bool:
        return self.flag("is_st")

    @property
    def mem_lr(self) -> bool:
        return self.flag("mem_lr")

    @property
    def is_rr(self) -> bool:
        return self.flag("is_rr")

    @property
    def is_disp(self) -> bool:
        return self.flag("is_disp")

    @property
    def is_direct(self) -> bool:
        return self.flag("is_direct")

    @property
    def is_trap(self) -> bool:
        return self.flag("is_trap")

    @property
    def is_control(self) -> bool:
        """Trace-terminating control transfer, as seen by the pipeline."""
        return self.is_branch or self.is_uncond

    @property
    def ends_trace(self) -> bool:
        return self.is_control or self.is_trap

    @property
    def latency_cycles(self) -> int:
        """Execution latency in cycles implied by the 2-bit lat class."""
        return LatencyClass(self.lat).cycles

    # -- per-operand register-file selection ----------------------------------
    # The 5-bit specifiers name a register in either file; ``is_fp`` selects
    # the FP file — except that the address base (rsrc1) of memory
    # operations always lives in the integer file, even for FP loads/stores
    # (lwc1/swc1 compute addresses from integer registers).
    @property
    def rsrc1_is_fp(self) -> bool:
        return self.is_fp and not (self.is_ld or self.is_st)

    @property
    def rsrc2_is_fp(self) -> bool:
        return self.is_fp

    @property
    def rdst_is_fp(self) -> bool:
        return self.is_fp

    # -- packing --------------------------------------------------------------
    def pack(self) -> int:
        """Pack into the canonical 64-bit signal word.

        Memoized per instance: the signature generator folds the packed
        word of every decoded instruction into the running trace XOR, and
        the pipeline hands it the *same* frozen vector for every dynamic
        instance of a static instruction, so caching turns the hot path
        into a dict lookup. (The instance is frozen; the cache can never
        go stale, and only successful packs are cached so invalid vectors
        still raise on every call.)
        """
        cached = self.__dict__.get("_packed_word")
        if cached is not None:
            return cached
        word = 0
        for field in FIELDS:
            value = getattr(self, field.name)
            check_fits(value, field.width, field.name)
            word = insert(word, field.offset, field.width, value)
        object.__setattr__(self, "_packed_word", word)
        return word

    @classmethod
    def unpack(cls, word: int) -> "DecodeSignals":
        """Rebuild a vector from a packed 64-bit word."""
        if not 0 <= word < (1 << TOTAL_WIDTH):
            raise DecodingError(f"signal word 0x{word:x} is not 64-bit")
        values = {f.name: extract(word, f.offset, f.width) for f in FIELDS}
        return cls(**values)

    def with_bit_flipped(self, bit: int) -> "DecodeSignals":
        """Return a copy with global bit ``bit`` (0..63) inverted.

        This is the paper's fault-injection primitive: a single-event upset
        on one decode signal of one dynamic instruction.
        """
        return DecodeSignals.unpack(flip_bit(self.pack(), bit))

    def with_field(self, **overrides: int) -> "DecodeSignals":
        """Return a copy with named fields replaced (testing convenience)."""
        return replace(self, **overrides)

    def diff(self, other: "DecodeSignals") -> List[str]:
        """Names of fields in which ``self`` and ``other`` differ."""
        return [f.name for f in FIELDS
                if getattr(self, f.name) != getattr(other, f.name)]

    def describe(self) -> str:
        """Multi-line human-readable dump used by diagnostics."""
        lines = [f"signals=0x{self.pack():016x}"]
        spec = opcodes.from_code(self.opcode)
        op_name = spec.mnemonic if spec else "<unassigned>"
        lines.append(f"  opcode    = 0x{self.opcode:02x} ({op_name})")
        active = [n for n in FLAG_NAMES if self.flag(n)]
        lines.append(f"  flags     = 0x{self.flags:03x} [{', '.join(active)}]")
        for name in ("shamt", "rsrc1", "rsrc2", "rdst", "lat", "imm",
                     "num_rsrc", "num_rdst", "mem_size"):
            lines.append(f"  {name:<9} = {getattr(self, name)}")
        return "\n".join(lines)


def decode(instr: Instruction) -> DecodeSignals:
    """The decode unit: translate an instruction into its signal vector.

    This is a pure function of the instruction word — which is exactly the
    property ITR exploits: every dynamic instance of a static instruction
    decodes to the identical vector, so the XOR trace signature is
    invariant across instances.
    """
    op = instr.op
    fmt = op.fmt
    rsrc1 = rsrc2 = rdst = 0
    if fmt in (Format.R,):
        rdst, rsrc1, rsrc2 = instr.rd, instr.rs, instr.rt
    elif fmt in (Format.R2, Format.SH, Format.I, Format.LOAD):
        rdst, rsrc1 = instr.rd, instr.rs
    elif fmt == Format.LUI:
        rdst = instr.rd
    elif fmt == Format.STORE:
        rsrc1, rsrc2 = instr.rs, instr.rt
    elif fmt == Format.BR2:
        rsrc1, rsrc2 = instr.rs, instr.rt
    elif fmt in (Format.BR1, Format.JR):
        rsrc1 = instr.rs
    elif fmt == Format.JALR:
        rdst, rsrc1 = instr.rd, instr.rs
    elif fmt == Format.J:
        # jal architecturally writes the link register.
        if op.mnemonic == "jal":
            rdst = 31
    # SYS / NONE have no register operands.

    num_rdst = op.num_rdst
    if op.mnemonic == "jal":
        num_rdst = 1

    return DecodeSignals(
        opcode=op.code,
        flags=flags_to_bits(op.flags),
        shamt=instr.shamt,
        rsrc1=rsrc1,
        rsrc2=rsrc2,
        rdst=rdst,
        lat=int(op.lat),
        imm=instr.imm,
        num_rsrc=op.num_rsrc,
        num_rdst=num_rdst,
        mem_size=op.mem_size,
    )


def signal_table_rows() -> List[Tuple[str, str, int]]:
    """Rows of paper Table 2: (field, description, width)."""
    return [(f.name, f.description, f.width) for f in FIELDS]
