"""Two-pass assembler for the PISA-like ISA.

Supports the classic MIPS-style surface syntax used by the benchmark
kernels in ``repro.workloads.kernels``:

* ``#`` comments, ``label:`` definitions, ``.text`` / ``.data`` sections
* data directives: ``.word``, ``.half``, ``.byte``, ``.float``, ``.space``,
  ``.align``, ``.asciiz``
* all native instructions (see ``repro.isa.opcodes``)
* pseudo-instructions: ``li``, ``la``, ``move``, ``b``, ``beqz``, ``bnez``,
  ``blt``, ``bgt``, ``ble``, ``bge``, ``not``, ``neg``, ``mul``, ``subi``

Pass 1 expands pseudo-instructions and lays out both segments to learn
label addresses; pass 2 patches branch displacements, jump targets and
``la``/``li`` halves.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import AssemblerError
from . import opcodes, registers
from .encoding import INSTRUCTION_BYTES
from .instruction import Instruction, make
from .opcodes import Format
from .program import DATA_BASE, TEXT_BASE, Program

_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


@dataclass
class _PendingInstruction:
    """An instruction awaiting label resolution in pass 2."""

    mnemonic: str
    rd: int = 0
    rs: int = 0
    rt: int = 0
    shamt: int = 0
    imm: int = 0
    # Fixup: (kind, label) where kind is one of
    # "branch" (pc-relative words), "jump" (direct word index),
    # "hi16"/"lo16" (address halves), or None when already resolved.
    fixup: Optional[Tuple[str, str]] = None
    line: int = 0


class Assembler:
    """Stateful two-pass assembler. Use :func:`assemble` for the one-shot API."""

    def __init__(self) -> None:
        self._text: List[_PendingInstruction] = []
        self._data = bytearray()
        self._symbols: Dict[str, int] = {}
        self._section = ".text"
        self._line = 0

    # ------------------------------------------------------------------ api
    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble complete source text into a :class:`Program`."""
        for lineno, raw in enumerate(source.splitlines(), start=1):
            self._line = lineno
            self._process_line(raw)
        if not self._text:
            raise AssemblerError("no instructions in .text section")
        instructions = [self._resolve(i, p)
                        for i, p in enumerate(self._text)]
        entry = self._symbols.get("main", TEXT_BASE)
        return Program(
            instructions=instructions,
            data=bytes(self._data),
            symbols=dict(self._symbols),
            entry=entry,
            name=name,
        )

    # ------------------------------------------------------------- pass one
    def _process_line(self, raw: str) -> None:
        line = raw.split("#", 1)[0].strip()
        if not line:
            return
        # Consume any leading labels (several may share a line).
        while True:
            match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:\s*", line)
            if not match:
                break
            self._define_label(match.group(1))
            line = line[match.end():]
        if not line:
            return
        if line.startswith("."):
            self._directive(line)
        else:
            self._instruction(line)

    def _error(self, message: str) -> AssemblerError:
        return AssemblerError(message, line=self._line)

    def _define_label(self, name: str) -> None:
        if not _LABEL_RE.match(name):
            raise self._error(f"invalid label name {name!r}")
        if name in self._symbols:
            raise self._error(f"duplicate label {name!r}")
        if self._section == ".text":
            address = TEXT_BASE + len(self._text) * INSTRUCTION_BYTES
        else:
            address = DATA_BASE + len(self._data)
        self._symbols[name] = address

    # ------------------------------------------------------------ directives
    def _directive(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        if name in (".text", ".data"):
            self._section = name
            return
        if self._section != ".data":
            raise self._error(f"{name} only allowed in .data section")
        if name == ".word":
            for value in self._parse_data_values(rest):
                self._data += (value & 0xFFFFFFFF).to_bytes(4, "little")
        elif name == ".half":
            for value in self._parse_data_values(rest):
                self._data += (value & 0xFFFF).to_bytes(2, "little")
        elif name == ".byte":
            for value in self._parse_data_values(rest):
                self._data += (value & 0xFF).to_bytes(1, "little")
        elif name == ".float":
            for token in self._split_operands(rest):
                self._data += struct.pack("<f", float(token))
        elif name == ".space":
            count = self._parse_int(rest)
            if count < 0:
                raise self._error(".space size must be non-negative")
            self._data += bytes(count)
        elif name == ".align":
            power = self._parse_int(rest)
            alignment = 1 << power
            while len(self._data) % alignment:
                self._data += b"\x00"
        elif name == ".asciiz":
            self._data += self._parse_string(rest) + b"\x00"
        elif name == ".ascii":
            self._data += self._parse_string(rest)
        else:
            raise self._error(f"unknown directive {name}")

    def _parse_string(self, text: str) -> bytes:
        text = text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise self._error(f"expected quoted string, got {text!r}")
        body = text[1:-1]
        try:
            return body.encode("utf-8").decode("unicode_escape").encode("latin-1")
        except UnicodeError as exc:
            raise self._error(f"bad string literal: {exc}") from exc

    def _parse_data_values(self, rest: str) -> List[int]:
        values: List[int] = []
        for token in self._split_operands(rest):
            if token in self._symbols or _LABEL_RE.match(token) and not \
                    re.match(r"^-?(0[xX])?\d", token):
                # Forward references in data are not supported; labels used
                # in .word must already be defined.
                if token not in self._symbols:
                    raise self._error(
                        f".word label {token!r} must be defined earlier"
                    )
                values.append(self._symbols[token])
            else:
                values.append(self._parse_int(token))
        return values

    def _parse_int(self, token: str) -> int:
        token = token.strip()
        try:
            if len(token) == 3 and token[0] == "'" and token[-1] == "'":
                return ord(token[1])
            return int(token, 0)
        except ValueError:
            raise self._error(f"bad integer literal {token!r}") from None

    @staticmethod
    def _split_operands(rest: str) -> List[str]:
        """Split on commas, except commas inside quoted character/string
        literals (so ``li $t0, ','`` parses as two operands)."""
        tokens: List[str] = []
        current: List[str] = []
        quote: Optional[str] = None
        for char in rest:
            if quote:
                current.append(char)
                if char == quote:
                    quote = None
            elif char in ("'", '"'):
                quote = char
                current.append(char)
            elif char == ",":
                tokens.append("".join(current).strip())
                current = []
            else:
                current.append(char)
        tokens.append("".join(current).strip())
        return [tok for tok in tokens if tok]

    # ---------------------------------------------------------- instructions
    def _instruction(self, line: str) -> None:
        if self._section != ".text":
            raise self._error("instructions only allowed in .text section")
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = self._split_operands(parts[1]) if len(parts) > 1 else []
        expander = _PSEUDO.get(mnemonic)
        if expander is not None:
            expander(self, operands)
            return
        if mnemonic not in opcodes.BY_MNEMONIC:
            raise self._error(f"unknown instruction {mnemonic!r}")
        self._native(mnemonic, operands)

    def _emit(self, mnemonic: str, rd: int = 0, rs: int = 0, rt: int = 0,
              shamt: int = 0, imm: int = 0,
              fixup: Optional[Tuple[str, str]] = None) -> None:
        self._text.append(_PendingInstruction(
            mnemonic, rd=rd, rs=rs, rt=rt, shamt=shamt, imm=imm,
            fixup=fixup, line=self._line))

    def _reg(self, token: str, fp: bool = False) -> int:
        try:
            return (registers.parse_fp_register(token) if fp
                    else registers.parse_register(token))
        except ValueError as exc:
            raise self._error(str(exc)) from exc

    def _imm16(self, token: str, signed: bool = True) -> int:
        value = self._parse_int(token)
        if signed and not -32768 <= value <= 65535:
            raise self._error(f"immediate {value} does not fit in 16 bits")
        if not signed and not 0 <= value <= 65535:
            raise self._error(f"immediate {value} does not fit in 16 bits")
        return value & 0xFFFF

    def _expect(self, operands: Sequence[str], count: int,
                mnemonic: str) -> None:
        if len(operands) != count:
            raise self._error(
                f"{mnemonic} expects {count} operand(s), got {len(operands)}"
            )

    _MEM_RE = re.compile(r"^(-?\w*)\s*\(\s*(\$?[\w]+)\s*\)$")

    def _mem_operand(self, token: str) -> Tuple[int, int]:
        """Parse ``imm($base)`` into (imm16, base register index)."""
        match = self._MEM_RE.match(token.strip())
        if not match:
            raise self._error(f"bad memory operand {token!r}")
        offset_text = match.group(1) or "0"
        offset = self._parse_int(offset_text)
        if not -32768 <= offset <= 32767:
            raise self._error(f"memory offset {offset} does not fit in 16 bits")
        return offset & 0xFFFF, self._reg(match.group(2))

    def _native(self, mnemonic: str, operands: Sequence[str]) -> None:
        spec = opcodes.BY_MNEMONIC[mnemonic]
        fp = spec.has("is_fp")
        fmt = spec.fmt
        if fmt == Format.R:
            self._expect(operands, 3, mnemonic)
            self._emit(mnemonic, rd=self._reg(operands[0], fp),
                       rs=self._reg(operands[1], fp),
                       rt=self._reg(operands[2], fp))
        elif fmt == Format.R2:
            self._expect(operands, 2, mnemonic)
            # Conversions move between files: cvt.s.w reads an int-typed
            # value already in an FP register (MIPS style: both in FP file).
            self._emit(mnemonic, rd=self._reg(operands[0], fp),
                       rs=self._reg(operands[1], fp))
        elif fmt == Format.SH:
            self._expect(operands, 3, mnemonic)
            amount = self._parse_int(operands[2])
            if not 0 <= amount < 32:
                raise self._error(f"shift amount {amount} out of range")
            self._emit(mnemonic, rd=self._reg(operands[0]),
                       rs=self._reg(operands[1]), shamt=amount)
        elif fmt == Format.I:
            self._expect(operands, 3, mnemonic)
            self._emit(mnemonic, rd=self._reg(operands[0]),
                       rs=self._reg(operands[1]),
                       imm=self._imm16(operands[2]))
        elif fmt == Format.LUI:
            self._expect(operands, 2, mnemonic)
            self._emit(mnemonic, rd=self._reg(operands[0]),
                       imm=self._imm16(operands[1], signed=False))
        elif fmt == Format.LOAD:
            self._expect(operands, 2, mnemonic)
            imm, base = self._mem_operand(operands[1])
            self._emit(mnemonic, rd=self._reg(operands[0], fp), rs=base,
                       imm=imm)
        elif fmt == Format.STORE:
            self._expect(operands, 2, mnemonic)
            imm, base = self._mem_operand(operands[1])
            self._emit(mnemonic, rt=self._reg(operands[0], fp), rs=base,
                       imm=imm)
        elif fmt == Format.BR2:
            self._expect(operands, 3, mnemonic)
            self._emit(mnemonic, rs=self._reg(operands[0]),
                       rt=self._reg(operands[1]),
                       fixup=("branch", operands[2]))
        elif fmt == Format.BR1:
            self._expect(operands, 2, mnemonic)
            self._emit(mnemonic, rs=self._reg(operands[0]),
                       fixup=("branch", operands[1]))
        elif fmt == Format.J:
            self._expect(operands, 1, mnemonic)
            self._emit(mnemonic, fixup=("jump", operands[0]))
        elif fmt == Format.JR:
            self._expect(operands, 1, mnemonic)
            self._emit(mnemonic, rs=self._reg(operands[0]))
        elif fmt == Format.JALR:
            self._expect(operands, 2, mnemonic)
            self._emit(mnemonic, rd=self._reg(operands[0]),
                       rs=self._reg(operands[1]))
        elif fmt in (Format.SYS, Format.NONE):
            self._expect(operands, 0, mnemonic)
            self._emit(mnemonic)
        else:  # pragma: no cover - formats are exhaustive
            raise self._error(f"unhandled format {fmt}")

    # ------------------------------------------------------ pseudo expansion
    def _pseudo_li(self, operands: Sequence[str]) -> None:
        self._expect(operands, 2, "li")
        rd = self._reg(operands[0])
        value = self._parse_int(operands[1]) & 0xFFFFFFFF
        if value <= 0xFFFF:
            self._emit("ori", rd=rd, rs=registers.ZERO, imm=value)
        elif value >= 0xFFFF8000:  # small negative: sign-extends from imm16
            self._emit("addiu", rd=rd, rs=registers.ZERO, imm=value & 0xFFFF)
        else:
            self._emit("lui", rd=rd, imm=(value >> 16) & 0xFFFF)
            if value & 0xFFFF:
                self._emit("ori", rd=rd, rs=rd, imm=value & 0xFFFF)

    def _pseudo_la(self, operands: Sequence[str]) -> None:
        self._expect(operands, 2, "la")
        rd = self._reg(operands[0])
        label = operands[1]
        self._emit("lui", rd=rd, fixup=("hi16", label))
        self._emit("ori", rd=rd, rs=rd, fixup=("lo16", label))

    def _pseudo_move(self, operands: Sequence[str]) -> None:
        self._expect(operands, 2, "move")
        self._emit("addu", rd=self._reg(operands[0]),
                   rs=self._reg(operands[1]), rt=registers.ZERO)

    def _pseudo_b(self, operands: Sequence[str]) -> None:
        self._expect(operands, 1, "b")
        self._emit("beq", rs=registers.ZERO, rt=registers.ZERO,
                   fixup=("branch", operands[0]))

    def _pseudo_beqz(self, operands: Sequence[str]) -> None:
        self._expect(operands, 2, "beqz")
        self._emit("beq", rs=self._reg(operands[0]), rt=registers.ZERO,
                   fixup=("branch", operands[1]))

    def _pseudo_bnez(self, operands: Sequence[str]) -> None:
        self._expect(operands, 2, "bnez")
        self._emit("bne", rs=self._reg(operands[0]), rt=registers.ZERO,
                   fixup=("branch", operands[1]))

    def _pseudo_cmp_branch(self, mnemonic: str,
                           operands: Sequence[str]) -> None:
        """Expand blt/bgt/ble/bge via slt into $at + beq/bne."""
        self._expect(operands, 3, mnemonic)
        rs = self._reg(operands[0])
        rt = self._reg(operands[1])
        label = operands[2]
        at = registers.AT
        if mnemonic == "blt":    # rs < rt  -> slt at,rs,rt ; bnez at
            self._emit("slt", rd=at, rs=rs, rt=rt)
            self._emit("bne", rs=at, rt=registers.ZERO,
                       fixup=("branch", label))
        elif mnemonic == "bgt":  # rs > rt  -> slt at,rt,rs ; bnez at
            self._emit("slt", rd=at, rs=rt, rt=rs)
            self._emit("bne", rs=at, rt=registers.ZERO,
                       fixup=("branch", label))
        elif mnemonic == "ble":  # rs <= rt -> slt at,rt,rs ; beqz at
            self._emit("slt", rd=at, rs=rt, rt=rs)
            self._emit("beq", rs=at, rt=registers.ZERO,
                       fixup=("branch", label))
        elif mnemonic == "bge":  # rs >= rt -> slt at,rs,rt ; beqz at
            self._emit("slt", rd=at, rs=rs, rt=rt)
            self._emit("beq", rs=at, rt=registers.ZERO,
                       fixup=("branch", label))

    def _pseudo_not(self, operands: Sequence[str]) -> None:
        self._expect(operands, 2, "not")
        self._emit("nor", rd=self._reg(operands[0]),
                   rs=self._reg(operands[1]), rt=registers.ZERO)

    def _pseudo_neg(self, operands: Sequence[str]) -> None:
        self._expect(operands, 2, "neg")
        self._emit("sub", rd=self._reg(operands[0]), rs=registers.ZERO,
                   rt=self._reg(operands[1]))

    def _pseudo_mul(self, operands: Sequence[str]) -> None:
        # Alias: our ISA's mult already writes rd (no HI/LO).
        self._expect(operands, 3, "mul")
        self._emit("mult", rd=self._reg(operands[0]),
                   rs=self._reg(operands[1]), rt=self._reg(operands[2]))

    def _pseudo_subi(self, operands: Sequence[str]) -> None:
        self._expect(operands, 3, "subi")
        value = -self._parse_int(operands[2])
        if not -32768 <= value <= 32767:
            raise self._error(f"subi immediate {-value} out of range")
        self._emit("addi", rd=self._reg(operands[0]),
                   rs=self._reg(operands[1]), imm=value & 0xFFFF)

    # ------------------------------------------------------------- pass two
    def _resolve(self, index: int,
                 pending: _PendingInstruction) -> Instruction:
        self._line = pending.line
        imm = pending.imm
        if pending.fixup is not None:
            kind, label = pending.fixup
            if label not in self._symbols:
                raise self._error(f"undefined label {label!r}")
            target = self._symbols[label]
            if kind == "branch":
                pc = TEXT_BASE + index * INSTRUCTION_BYTES
                delta = (target - (pc + INSTRUCTION_BYTES))
                if delta % INSTRUCTION_BYTES:
                    raise self._error(f"branch target {label!r} misaligned")
                words = delta // INSTRUCTION_BYTES
                if not -32768 <= words <= 32767:
                    raise self._error(f"branch to {label!r} out of range")
                imm = words & 0xFFFF
            elif kind == "jump":
                offset = target - TEXT_BASE
                if offset % INSTRUCTION_BYTES:
                    raise self._error(f"jump target {label!r} misaligned")
                words = offset // INSTRUCTION_BYTES
                if not 0 <= words <= 0xFFFF:
                    raise self._error(f"jump to {label!r} out of range")
                imm = words
            elif kind == "hi16":
                imm = (target >> 16) & 0xFFFF
            elif kind == "lo16":
                imm = target & 0xFFFF
            else:  # pragma: no cover
                raise self._error(f"unknown fixup kind {kind!r}")
        return make(pending.mnemonic, rd=pending.rd, rs=pending.rs,
                    rt=pending.rt, shamt=pending.shamt, imm=imm)


_PSEUDO: Dict[str, Callable[[Assembler, Sequence[str]], None]] = {
    "li": Assembler._pseudo_li,
    "la": Assembler._pseudo_la,
    "move": Assembler._pseudo_move,
    "b": Assembler._pseudo_b,
    "beqz": Assembler._pseudo_beqz,
    "bnez": Assembler._pseudo_bnez,
    "blt": lambda self, ops: self._pseudo_cmp_branch("blt", ops),
    "bgt": lambda self, ops: self._pseudo_cmp_branch("bgt", ops),
    "ble": lambda self, ops: self._pseudo_cmp_branch("ble", ops),
    "bge": lambda self, ops: self._pseudo_cmp_branch("bge", ops),
    "not": Assembler._pseudo_not,
    "neg": Assembler._pseudo_neg,
    "mul": Assembler._pseudo_mul,
    "subi": Assembler._pseudo_subi,
}


def assemble(source: str, name: str = "program") -> Program:
    """Assemble source text into a :class:`Program` (one-shot API)."""
    return Assembler().assemble(source, name=name)
