"""Program container: text segment, data segment, symbols, entry point.

Follows a MIPS/PISA-style flat memory layout:

* text at ``TEXT_BASE`` (0x0040_0000), 8 bytes per instruction
* data at ``DATA_BASE`` (0x1000_0000)
* stack growing down from ``STACK_TOP`` (0x7FFF_F000)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import MemoryFault
from .encoding import INSTRUCTION_BYTES
from .instruction import Instruction

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
STACK_TOP = 0x7FFF_F000


@dataclass
class Program:
    """An assembled program ready to load into a simulator."""

    instructions: List[Instruction]
    data: bytes = b""
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = TEXT_BASE
    name: str = "program"

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("program must contain at least one instruction")
        if self.entry < TEXT_BASE or self.entry >= self.text_end:
            raise ValueError(
                f"entry 0x{self.entry:08x} outside text segment "
                f"[0x{TEXT_BASE:08x}, 0x{self.text_end:08x})"
            )

    @property
    def text_end(self) -> int:
        """First address past the text segment."""
        return TEXT_BASE + len(self.instructions) * INSTRUCTION_BYTES

    def contains_pc(self, pc: int) -> bool:
        """Whether ``pc`` addresses an instruction of this program."""
        return (TEXT_BASE <= pc < self.text_end
                and (pc - TEXT_BASE) % INSTRUCTION_BYTES == 0)

    def instruction_at(self, pc: int) -> Instruction:
        """Fetch the instruction at ``pc``.

        Raises :class:`MemoryFault` for addresses outside the text segment
        or misaligned PCs — the behaviour a real I-cache would exhibit on a
        wild program counter.
        """
        if pc < TEXT_BASE or pc >= self.text_end:
            raise MemoryFault(pc, "instruction fetch outside text segment")
        offset = pc - TEXT_BASE
        if offset % INSTRUCTION_BYTES:
            raise MemoryFault(pc, "misaligned instruction fetch")
        return self.instructions[offset // INSTRUCTION_BYTES]

    def index_of(self, pc: int) -> int:
        """Instruction index of ``pc`` within the text segment."""
        if not self.contains_pc(pc):
            raise MemoryFault(pc, "not a valid instruction address")
        return (pc - TEXT_BASE) // INSTRUCTION_BYTES

    def pc_of(self, index: int) -> int:
        """Address of the instruction at text index ``index``."""
        if not 0 <= index < len(self.instructions):
            raise IndexError(f"instruction index {index} out of range")
        return TEXT_BASE + index * INSTRUCTION_BYTES

    def symbol(self, name: str) -> int:
        """Address of a label defined in the source."""
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r}") from None

    def listing(self) -> str:
        """Human-readable disassembly listing with addresses."""
        reverse: Dict[int, List[str]] = {}
        for name, addr in self.symbols.items():
            reverse.setdefault(addr, []).append(name)
        lines: List[str] = []
        for index, instr in enumerate(self.instructions):
            pc = self.pc_of(index)
            for label in sorted(reverse.get(pc, [])):
                lines.append(f"{label}:")
            lines.append(f"  0x{pc:08x}:  {instr.render()}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return (f"Program({self.name!r}, {len(self.instructions)} insts, "
                f"{len(self.data)} data bytes)")
