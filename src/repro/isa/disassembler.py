"""Disassembler: machine words / programs back to readable assembly."""

from __future__ import annotations

from typing import Iterable, List

from .encoding import INSTRUCTION_BYTES, decode_word
from .instruction import Instruction
from .program import TEXT_BASE, Program


def disassemble_word(word: int) -> str:
    """Disassemble one 64-bit machine word to assembly text."""
    return decode_word(word).render()


def disassemble(instructions: Iterable[Instruction],
                base: int = TEXT_BASE) -> str:
    """Disassemble a sequence of instructions with addresses."""
    lines: List[str] = []
    pc = base
    for instr in instructions:
        lines.append(f"0x{pc:08x}:  {instr.render()}")
        pc += INSTRUCTION_BYTES
    return "\n".join(lines)


def disassemble_program(program: Program) -> str:
    """Full program listing including labels (delegates to the program)."""
    return program.listing()
