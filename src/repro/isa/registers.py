"""Register-file naming for the PISA-like ISA.

32 integer registers with MIPS-style conventional names plus 32
floating-point registers ``$f0..$f31``. Register specifiers are 5 bits in
the decode-signal vector; the ``is_fp`` flag selects which file a specifier
refers to.
"""

from __future__ import annotations

from typing import Dict, List

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Conventional integer register names in index order.
INT_REG_NAMES: List[str] = (
    ["zero", "at", "v0", "v1", "a0", "a1", "a2", "a3"]
    + [f"t{i}" for i in range(8)]        # $t0..$t7 -> 8..15
    + [f"s{i}" for i in range(8)]        # $s0..$s7 -> 16..23
    + ["t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra"]
)

if len(INT_REG_NAMES) != NUM_INT_REGS:
    raise AssertionError("integer register name table must have 32 entries")

#: Map from every accepted register spelling (without '$') to its index.
_INT_BY_NAME: Dict[str, int] = {}
for _index, _name in enumerate(INT_REG_NAMES):
    _INT_BY_NAME[_name] = _index
    _INT_BY_NAME[f"r{_index}"] = _index
    _INT_BY_NAME[str(_index)] = _index

_FP_BY_NAME: Dict[str, int] = {f"f{i}": i for i in range(NUM_FP_REGS)}

# Named aliases used throughout kernels and the ABI.
ZERO = 0
AT = 1
V0 = 2
V1 = 3
A0 = 4
A1 = 5
A2 = 6
A3 = 7
T0 = 8
S0 = 16
GP = 28
SP = 29
FP = 30
RA = 31


def parse_register(token: str) -> int:
    """Parse an *integer* register token like ``$t0``, ``$5`` or ``t0``.

    Returns the 5-bit register index. Raises ``ValueError`` for unknown
    names and for floating-point registers (use :func:`parse_fp_register`).
    """
    name = token.lstrip("$").lower()
    if name in _FP_BY_NAME:
        raise ValueError(f"{token!r} is a floating-point register")
    try:
        return _INT_BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown integer register {token!r}") from None


def parse_fp_register(token: str) -> int:
    """Parse a floating-point register token like ``$f4``."""
    name = token.lstrip("$").lower()
    try:
        return _FP_BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown FP register {token!r}") from None


def parse_any_register(token: str, is_fp: bool) -> int:
    """Parse a register of the file selected by ``is_fp``."""
    return parse_fp_register(token) if is_fp else parse_register(token)


def int_reg_name(index: int) -> str:
    """Canonical ``$``-prefixed name of integer register ``index``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index {index} out of range")
    return f"${INT_REG_NAMES[index]}"


def fp_reg_name(index: int) -> str:
    """Canonical ``$``-prefixed name of FP register ``index``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"FP register index {index} out of range")
    return f"$f{index}"
