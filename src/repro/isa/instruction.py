"""The architected :class:`Instruction` record.

An ``Instruction`` is the assembler's output and the fetch unit's input:
an opcode plus raw operand fields. It deliberately carries *no* decoded
semantics — those live in the decode-signal vector produced by
``repro.isa.decode_signals``, because the paper's fault model injects into
decode signals, not into instruction words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from . import opcodes, registers
from .opcodes import Format, OpSpec

#: Size of one instruction word in bytes (PISA-style 8-byte instructions).
#: Lives here — on the instruction itself — so that control-flow target
#: arithmetic below needs no import from :mod:`repro.isa.encoding` (which
#: imports this module); ``encoding`` re-exports it for existing users.
INSTRUCTION_BYTES = 8


@dataclass(frozen=True)
class Instruction:
    """One architected instruction.

    Fields follow the encoding slots rather than assembly order:

    * ``rd`` — destination register specifier (5 bits)
    * ``rs`` — first source register specifier (5 bits)
    * ``rt`` — second source register specifier (5 bits)
    * ``shamt`` — shift amount (5 bits)
    * ``imm`` — 16-bit immediate, stored *unsigned* (two's complement for
      negative values); branch displacements are in instruction words.
    """

    op: OpSpec
    rd: int = 0
    rs: int = 0
    rt: int = 0
    shamt: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for name in ("rd", "rs", "rt", "shamt"):
            value = getattr(self, name)
            if not 0 <= value < 32:
                raise ValueError(
                    f"{self.op.mnemonic}: {name}={value} not 5-bit")
        if not 0 <= self.imm <= 0xFFFF:
            raise ValueError(f"{self.op.mnemonic}: imm={self.imm} not 16-bit")

    # -- convenience predicates (forwarded from the opcode spec) -----------
    @property
    def mnemonic(self) -> str:
        return self.op.mnemonic

    @property
    def is_control(self) -> bool:
        """True for trace-ending control transfers (branch or jump)."""
        return self.op.is_control

    @property
    def is_trap(self) -> bool:
        return self.op.has("is_trap")

    @property
    def ends_trace(self) -> bool:
        """True if this instruction terminates an ITR trace.

        Traces end on branching instructions (paper Section 2.1); traps also
        end a trace because they redirect control to the OS.
        """
        return self.is_control or self.is_trap

    # -- control-flow metadata (consumed by the static analyzer) -----------
    @property
    def is_conditional_branch(self) -> bool:
        """True for conditional branches (taken *or* fall-through)."""
        return self.op.has("is_branch")

    @property
    def is_direct_jump(self) -> bool:
        """True for jumps whose target is encoded in the instruction."""
        return self.op.has("is_uncond") and self.op.has("is_direct")

    @property
    def is_indirect_jump(self) -> bool:
        """True for register-target jumps (``jr``/``jalr``)."""
        return self.op.has("is_uncond") and not self.op.has("is_direct")

    @property
    def is_call(self) -> bool:
        """True for link-writing control transfers (``jal``/``jalr``)."""
        return self.op.mnemonic in ("jal", "jalr")

    @property
    def branch_always_taken(self) -> bool:
        """True for conditional branches that statically always take.

        The assembler's ``b`` pseudo expands to ``beq $zero, $zero`` —
        and any ``beq`` comparing a register with itself is equally
        unconditional. Treating these as single-successor keeps the CFG
        free of never-taken fall-through edges.
        """
        return (self.is_conditional_branch
                and self.op.mnemonic == "beq" and self.rs == self.rt)

    @property
    def branch_offset_words(self) -> int:
        """Signed branch displacement in instruction words."""
        return self.imm - 0x10000 if self.imm & 0x8000 else self.imm

    def branch_target(self, pc: int) -> int:
        """Taken target of a conditional branch located at ``pc``.

        Mirrors :func:`repro.arch.semantics.branch_target` but works from
        the architected instruction instead of decode signals, so offline
        tools can resolve targets without a decode step.
        """
        if not self.is_conditional_branch:
            raise ValueError(f"{self.mnemonic} is not a conditional branch")
        return (pc + INSTRUCTION_BYTES
                + self.branch_offset_words * INSTRUCTION_BYTES) & 0xFFFFFFFF

    @property
    def jump_target(self) -> int:
        """Absolute target of a direct jump (``j``/``jal``)."""
        if not self.is_direct_jump:
            raise ValueError(f"{self.mnemonic} is not a direct jump")
        from .program import TEXT_BASE  # deferred: program imports us
        return TEXT_BASE + self.imm * INSTRUCTION_BYTES

    def static_successors(self, pc: int) -> Optional[Tuple[int, ...]]:
        """Statically known successor PCs of this instruction at ``pc``.

        * plain instructions and traps: the fall-through PC (traps return
          from the OS, except for program exit — the analyzer refines that)
        * conditional branches: fall-through plus taken target (always-
          taken ``beq $r, $r`` keeps only the target)
        * direct jumps: the encoded target
        * indirect jumps: ``None`` — the target set is not encoded in the
          instruction; callers must approximate (e.g. call-return sites)
        """
        if self.is_indirect_jump:
            return None
        if self.is_conditional_branch:
            if self.branch_always_taken:
                return (self.branch_target(pc),)
            return (pc + INSTRUCTION_BYTES, self.branch_target(pc))
        if self.is_direct_jump:
            return (self.jump_target,)
        return (pc + INSTRUCTION_BYTES,)

    def render(self) -> str:
        """Render as canonical assembly text."""
        op = self.op
        fp = op.has("is_fp")

        def reg(index: int) -> str:
            return (registers.fp_reg_name(index) if fp
                    else registers.int_reg_name(index))

        def ireg(index: int) -> str:
            return registers.int_reg_name(index)

        simm = self.imm - 0x10000 if self.imm & 0x8000 else self.imm
        fmt = op.fmt
        if fmt == Format.R:
            return (f"{op.mnemonic} {reg(self.rd)}, "
                    f"{reg(self.rs)}, {reg(self.rt)}")
        if fmt == Format.R2:
            return f"{op.mnemonic} {reg(self.rd)}, {reg(self.rs)}"
        if fmt == Format.SH:
            return (f"{op.mnemonic} {reg(self.rd)}, "
                    f"{reg(self.rs)}, {self.shamt}")
        if fmt == Format.I:
            return f"{op.mnemonic} {ireg(self.rd)}, {ireg(self.rs)}, {simm}"
        if fmt == Format.LUI:
            return f"{op.mnemonic} {ireg(self.rd)}, {self.imm}"
        if fmt == Format.LOAD:
            return f"{op.mnemonic} {reg(self.rd)}, {simm}({ireg(self.rs)})"
        if fmt == Format.STORE:
            return f"{op.mnemonic} {reg(self.rt)}, {simm}({ireg(self.rs)})"
        if fmt == Format.BR2:
            return f"{op.mnemonic} {ireg(self.rs)}, {ireg(self.rt)}, {simm}"
        if fmt == Format.BR1:
            return f"{op.mnemonic} {ireg(self.rs)}, {simm}"
        if fmt == Format.J:
            return f"{op.mnemonic} {self.imm}"
        if fmt == Format.JR:
            return f"{op.mnemonic} {ireg(self.rs)}"
        if fmt == Format.JALR:
            return f"{op.mnemonic} {ireg(self.rd)}, {ireg(self.rs)}"
        return op.mnemonic

    def __str__(self) -> str:
        return self.render()


def make(mnemonic: str, rd: int = 0, rs: int = 0, rt: int = 0,
         shamt: int = 0, imm: int = 0) -> Instruction:
    """Build an instruction from a mnemonic and raw fields.

    Negative immediates are wrapped into 16-bit two's complement.

    >>> make("addi", rd=8, rs=8, imm=-1).imm
    65535
    """
    if imm < 0:
        imm &= 0xFFFF
    return Instruction(opcodes.lookup(mnemonic), rd=rd, rs=rs, rt=rt,
                       shamt=shamt, imm=imm)


NOP: Instruction = make("nop")
