"""The architected :class:`Instruction` record.

An ``Instruction`` is the assembler's output and the fetch unit's input:
an opcode plus raw operand fields. It deliberately carries *no* decoded
semantics — those live in the decode-signal vector produced by
``repro.isa.decode_signals``, because the paper's fault model injects into
decode signals, not into instruction words.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import opcodes, registers
from .opcodes import Format, OpSpec


@dataclass(frozen=True)
class Instruction:
    """One architected instruction.

    Fields follow the encoding slots rather than assembly order:

    * ``rd`` — destination register specifier (5 bits)
    * ``rs`` — first source register specifier (5 bits)
    * ``rt`` — second source register specifier (5 bits)
    * ``shamt`` — shift amount (5 bits)
    * ``imm`` — 16-bit immediate, stored *unsigned* (two's complement for
      negative values); branch displacements are in instruction words.
    """

    op: OpSpec
    rd: int = 0
    rs: int = 0
    rt: int = 0
    shamt: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for name in ("rd", "rs", "rt", "shamt"):
            value = getattr(self, name)
            if not 0 <= value < 32:
                raise ValueError(f"{self.op.mnemonic}: {name}={value} not 5-bit")
        if not 0 <= self.imm <= 0xFFFF:
            raise ValueError(f"{self.op.mnemonic}: imm={self.imm} not 16-bit")

    # -- convenience predicates (forwarded from the opcode spec) -----------
    @property
    def mnemonic(self) -> str:
        return self.op.mnemonic

    @property
    def is_control(self) -> bool:
        """True for trace-ending control transfers (branch or jump)."""
        return self.op.is_control

    @property
    def is_trap(self) -> bool:
        return self.op.has("is_trap")

    @property
    def ends_trace(self) -> bool:
        """True if this instruction terminates an ITR trace.

        Traces end on branching instructions (paper Section 2.1); traps also
        end a trace because they redirect control to the OS.
        """
        return self.is_control or self.is_trap

    def render(self) -> str:
        """Render as canonical assembly text."""
        op = self.op
        fp = op.has("is_fp")

        def reg(index: int) -> str:
            return (registers.fp_reg_name(index) if fp
                    else registers.int_reg_name(index))

        def ireg(index: int) -> str:
            return registers.int_reg_name(index)

        simm = self.imm - 0x10000 if self.imm & 0x8000 else self.imm
        fmt = op.fmt
        if fmt == Format.R:
            return f"{op.mnemonic} {reg(self.rd)}, {reg(self.rs)}, {reg(self.rt)}"
        if fmt == Format.R2:
            return f"{op.mnemonic} {reg(self.rd)}, {reg(self.rs)}"
        if fmt == Format.SH:
            return f"{op.mnemonic} {reg(self.rd)}, {reg(self.rs)}, {self.shamt}"
        if fmt == Format.I:
            return f"{op.mnemonic} {ireg(self.rd)}, {ireg(self.rs)}, {simm}"
        if fmt == Format.LUI:
            return f"{op.mnemonic} {ireg(self.rd)}, {self.imm}"
        if fmt == Format.LOAD:
            return f"{op.mnemonic} {reg(self.rd)}, {simm}({ireg(self.rs)})"
        if fmt == Format.STORE:
            return f"{op.mnemonic} {reg(self.rt)}, {simm}({ireg(self.rs)})"
        if fmt == Format.BR2:
            return f"{op.mnemonic} {ireg(self.rs)}, {ireg(self.rt)}, {simm}"
        if fmt == Format.BR1:
            return f"{op.mnemonic} {ireg(self.rs)}, {simm}"
        if fmt == Format.J:
            return f"{op.mnemonic} {self.imm}"
        if fmt == Format.JR:
            return f"{op.mnemonic} {ireg(self.rs)}"
        if fmt == Format.JALR:
            return f"{op.mnemonic} {ireg(self.rd)}, {ireg(self.rs)}"
        return op.mnemonic

    def __str__(self) -> str:
        return self.render()


def make(mnemonic: str, rd: int = 0, rs: int = 0, rt: int = 0,
         shamt: int = 0, imm: int = 0) -> Instruction:
    """Build an instruction from a mnemonic and raw fields.

    Negative immediates are wrapped into 16-bit two's complement.

    >>> make("addi", rd=8, rs=8, imm=-1).imm
    65535
    """
    if imm < 0:
        imm &= 0xFFFF
    return Instruction(opcodes.lookup(mnemonic), rd=rd, rs=rs, rt=rt,
                       shamt=shamt, imm=imm)


NOP: Instruction = make("nop")
