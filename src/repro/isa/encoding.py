"""Binary encoding of instructions into 64-bit words.

SimpleScalar's PISA ISA — the paper's evaluation ISA — uses 8-byte
instruction words; we follow suit. The layout leaves room for every field
without overlapping formats:

=========  =====  ======
field      width  offset
=========  =====  ======
opcode     8      56
rd         5      51
rs         5      46
rt         5      41
shamt      5      36
imm        16     20
reserved   20     0
=========  =====  ======
"""

from __future__ import annotations

from typing import Iterable, List

from ..errors import DecodingError
from ..utils.bitops import extract, insert
from . import opcodes
from .instruction import INSTRUCTION_BYTES, Instruction

__all__ = ["INSTRUCTION_BYTES", "encode", "decode_word", "encode_program",
           "decode_image"]

_OPCODE_OFF = 56
_RD_OFF = 51
_RS_OFF = 46
_RT_OFF = 41
_SHAMT_OFF = 36
_IMM_OFF = 20


def encode(instr: Instruction) -> int:
    """Encode an instruction into its 64-bit machine word."""
    word = 0
    word = insert(word, _OPCODE_OFF, 8, instr.op.code)
    word = insert(word, _RD_OFF, 5, instr.rd)
    word = insert(word, _RS_OFF, 5, instr.rs)
    word = insert(word, _RT_OFF, 5, instr.rt)
    word = insert(word, _SHAMT_OFF, 5, instr.shamt)
    word = insert(word, _IMM_OFF, 16, instr.imm)
    return word


def decode_word(word: int) -> Instruction:
    """Decode a 64-bit machine word back into an :class:`Instruction`.

    Raises :class:`DecodingError` for unassigned opcodes or nonzero
    reserved bits — both indicate a corrupt text image rather than a
    decode-signal fault (which is injected later, on the signal vector).
    """
    if not 0 <= word < (1 << 64):
        raise DecodingError(f"machine word 0x{word:x} is not 64-bit")
    if extract(word, 0, 20):
        raise DecodingError(
            f"machine word 0x{word:016x} has nonzero reserved bits"
        )
    code = extract(word, _OPCODE_OFF, 8)
    spec = opcodes.from_code(code)
    if spec is None:
        raise DecodingError(f"unassigned opcode 0x{code:02x}")
    return Instruction(
        spec,
        rd=extract(word, _RD_OFF, 5),
        rs=extract(word, _RS_OFF, 5),
        rt=extract(word, _RT_OFF, 5),
        shamt=extract(word, _SHAMT_OFF, 5),
        imm=extract(word, _IMM_OFF, 16),
    )


def encode_program(instructions: Iterable[Instruction]) -> bytes:
    """Encode a sequence of instructions into a little-endian text image."""
    blob = bytearray()
    for instr in instructions:
        blob += encode(instr).to_bytes(INSTRUCTION_BYTES, "little")
    return bytes(blob)


def decode_image(image: bytes) -> List[Instruction]:
    """Decode a text image produced by :func:`encode_program`."""
    if len(image) % INSTRUCTION_BYTES:
        raise DecodingError(
            f"text image length {len(image)} is not a multiple of "
            f"{INSTRUCTION_BYTES}"
        )
    out: List[Instruction] = []
    for offset in range(0, len(image), INSTRUCTION_BYTES):
        word = int.from_bytes(image[offset:offset + INSTRUCTION_BYTES],
                              "little")
        out.append(decode_word(word))
    return out
