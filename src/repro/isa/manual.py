"""ISA reference manual generator.

``docs/isa.md`` is generated from the live opcode/signal tables by this
module (``python -m repro.isa.manual > docs/isa.md``), and a test asserts
the committed file matches — so the manual can never drift from the
implementation.
"""

from __future__ import annotations

from typing import List

from .decode_signals import signal_table_rows
from .opcodes import Format, all_specs
from .program import DATA_BASE, STACK_TOP, TEXT_BASE

_FORMAT_SYNTAX = {
    Format.R: "op rd, rs, rt",
    Format.R2: "op rd, rs",
    Format.SH: "op rd, rs, shamt",
    Format.I: "op rd, rs, imm16",
    Format.LUI: "op rd, imm16",
    Format.LOAD: "op rd, imm16(rs)",
    Format.STORE: "op rt, imm16(rs)",
    Format.BR2: "op rs, rt, label",
    Format.BR1: "op rs, label",
    Format.J: "op label",
    Format.JR: "op rs",
    Format.JALR: "op rd, rs",
    Format.SYS: "op",
    Format.NONE: "op",
}

_PSEUDO_OPS = [
    ("li rd, imm32", "load 32-bit immediate (ori / addiu / lui+ori)"),
    ("la rd, label", "load address (lui+ori)"),
    ("move rd, rs", "register copy (addu rd, rs, $zero)"),
    ("b label", "unconditional branch (beq $zero, $zero)"),
    ("beqz/bnez rs, label", "compare against zero"),
    ("blt/bgt/ble/bge rs, rt, label", "signed compare-and-branch "
                                      "(slt into $at + beq/bne)"),
    ("not rd, rs", "bitwise complement (nor)"),
    ("neg rd, rs", "two's-complement negate (sub from $zero)"),
    ("mul rd, rs, rt", "alias of mult (this ISA has no HI/LO)"),
    ("subi rd, rs, imm", "subtract immediate (addi of -imm)"),
]

_DIRECTIVES = [
    (".text / .data", "section selection"),
    (".word v, ...", "32-bit little-endian words (labels allowed)"),
    (".half v, ...", "16-bit values"),
    (".byte v, ...", "8-bit values"),
    (".float f, ...", "IEEE-754 single-precision values"),
    (".space n", "n zero bytes"),
    (".align p", "align to 2^p bytes"),
    (".asciiz \"s\"", "NUL-terminated string (escapes supported)"),
    (".ascii \"s\"", "string without terminator"),
]

_SYSCALLS = [
    (1, "print_int", "$a0: signed value to print"),
    (4, "print_string", "$a0: address of NUL-terminated string"),
    (5, "read_int", "result in $v0 (0 when input exhausted)"),
    (10, "exit", "halt the program"),
    (11, "print_char", "$a0: character code"),
    (40, "srand", "$a0: PRNG seed"),
    (41, "rand", "$v0 = PRNG value; modulo $a0 when $a0 > 0"),
]


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def generate_isa_manual() -> str:
    """Render the full ISA reference as markdown."""
    parts: List[str] = []
    parts.append("# ISA reference (generated — do not edit)\n")
    parts.append(
        "A PISA-like RISC: 64-bit fixed-width instruction words, 32 "
        "integer registers (MIPS naming, `$zero` hardwired), 32 "
        "single-precision FP registers, little-endian byte-addressable "
        "memory.\n")
    parts.append("Regenerate with `python -m repro.isa.manual > "
                 "docs/isa.md`.\n")

    parts.append("## Memory map\n")
    parts.append(_md_table(
        ["region", "base", "notes"],
        [["text", f"0x{TEXT_BASE:08X}", "8 bytes per instruction"],
         ["data", f"0x{DATA_BASE:08X}", "`$gp` points here at reset"],
         ["stack", f"0x{STACK_TOP:08X}", "grows down; `$sp` at reset"]]))
    parts.append("")

    parts.append("## Instructions\n")
    rows = []
    for spec in sorted(all_specs(), key=lambda s: s.code):
        flags = ", ".join(sorted(spec.flags)) or "-"
        rows.append([
            f"`{spec.mnemonic}`",
            f"0x{spec.code:02X}",
            f"`{_FORMAT_SYNTAX[spec.fmt]}`",
            spec.lat.cycles,
            spec.mem_size or "-",
            flags,
        ])
    parts.append(_md_table(
        ["mnemonic", "opcode", "syntax", "latency", "mem bytes", "flags"],
        rows))
    parts.append("")

    parts.append("## Pseudo-instructions\n")
    parts.append(_md_table(["syntax", "expansion"],
                           [[f"`{syntax}`", expansion]
                            for syntax, expansion in _PSEUDO_OPS]))
    parts.append("")

    parts.append("## Assembler directives\n")
    parts.append(_md_table(["directive", "meaning"],
                           [[f"`{name}`", meaning]
                            for name, meaning in _DIRECTIVES]))
    parts.append("")

    parts.append("## Syscalls (`$v0` = service, `$a0` = argument)\n")
    parts.append(_md_table(["service", "name", "behaviour"],
                           [[number, f"`{name}`", note]
                            for number, name, note in _SYSCALLS]))
    parts.append("")

    parts.append("## Decode signals (paper Table 2)\n")
    parts.append(
        "The decode unit emits this 64-bit vector per instruction; it is "
        "the sole input to everything downstream of decode, and the XOR "
        "of a trace's vectors is its ITR signature.\n")
    parts.append(_md_table(
        ["field", "width", "description"],
        [[f"`{name}`", width, description]
         for name, description, width in signal_table_rows()]))
    parts.append("")
    return "\n".join(parts)


if __name__ == "__main__":
    print(generate_isa_manual())
