"""PISA-like instruction-set architecture: opcodes, encoding, assembler.

The public surface mirrors what a user needs to write and inspect programs:

>>> from repro.isa import assemble, decode
>>> program = assemble('''
... main:
...     li   $t0, 5
...     addi $t0, $t0, 1
...     syscall
... ''')
>>> decode(program.instructions[0]).rdst
8
"""

from .assembler import Assembler, assemble
from .decode_signals import (
    FIELD_BY_NAME,
    FIELDS,
    TOTAL_WIDTH,
    DecodeSignals,
    decode,
    field_of_bit,
    signal_table_rows,
)
from .disassembler import disassemble, disassemble_program, disassemble_word
from .encoding import (
    INSTRUCTION_BYTES,
    decode_image,
    decode_word,
    encode,
    encode_program,
)
from .instruction import NOP, Instruction, make
from .opcodes import FLAG_NAMES, Format, LatencyClass, OpSpec
from .program import DATA_BASE, STACK_TOP, TEXT_BASE, Program
from . import opcodes, registers

__all__ = [
    "Assembler",
    "assemble",
    "FIELD_BY_NAME",
    "FIELDS",
    "TOTAL_WIDTH",
    "DecodeSignals",
    "decode",
    "field_of_bit",
    "signal_table_rows",
    "disassemble",
    "disassemble_program",
    "disassemble_word",
    "INSTRUCTION_BYTES",
    "decode_image",
    "decode_word",
    "encode",
    "encode_program",
    "NOP",
    "Instruction",
    "make",
    "FLAG_NAMES",
    "Format",
    "LatencyClass",
    "OpSpec",
    "DATA_BASE",
    "STACK_TOP",
    "TEXT_BASE",
    "Program",
    "opcodes",
    "registers",
]
