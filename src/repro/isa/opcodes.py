"""Opcode definitions for the PISA-like ISA used by the reproduction.

The paper evaluates SPEC2K binaries compiled for SimpleScalar's PISA ISA
[14]. We define a from-scratch PISA-like RISC: 64-bit fixed-width
instruction words (as in PISA), 32 integer + 32 floating-point registers,
and an opcode set rich enough to express realistic benchmark kernels.

Each opcode carries a full :class:`OpSpec` describing its instruction
format and, crucially, every *decode signal* it produces (paper Table 2):
control flags, latency class, operand counts and memory size. The decode
unit (``repro.isa.decode_signals``) is a pure function of this table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple


class Format(enum.Enum):
    """Instruction assembly/encoding formats.

    =======  ==========================================  =================
    format   assembly shape                              operand mapping
    =======  ==========================================  =================
    R        ``op rd, rs, rt``                           dst=rd s1=rs s2=rt
    R2       ``op rd, rs``                               dst=rd s1=rs
    SH       ``op rd, rs, shamt``                        dst=rd s1=rs
    I        ``op rd, rs, imm``                          dst=rd s1=rs
    LUI      ``op rd, imm``                              dst=rd
    LOAD     ``op rd, imm(rs)``                          dst=rd s1=rs
    STORE    ``op rt, imm(rs)``                          s1=rs s2=rt
    BR2      ``op rs, rt, label``                        s1=rs s2=rt
    BR1      ``op rs, label``                            s1=rs
    J        ``op label``                                (direct target)
    JR       ``op rs``                                   s1=rs
    JALR     ``op rd, rs``                               dst=rd s1=rs
    SYS      ``op``                                      (trap)
    NONE     ``op``                                      no operands
    =======  ==========================================  =================
    """

    R = "R"
    R2 = "R2"
    SH = "SH"
    I = "I"
    LUI = "LUI"
    LOAD = "LOAD"
    STORE = "STORE"
    BR2 = "BR2"
    BR1 = "BR1"
    J = "J"
    JR = "JR"
    JALR = "JALR"
    SYS = "SYS"
    NONE = "NONE"


class LatencyClass(enum.IntEnum):
    """Execution-latency classes encoded in the 2-bit ``lat`` signal.

    The paper's Table 2 allocates 2 bits to the decoded execution latency;
    we define the four classes below. Injecting a fault that *increases*
    the latency only delays dependent wakeup (a masked fault, as the paper
    observes); a decrease is modeled the same way because the scheduler
    derives timing solely from this signal.
    """

    FAST = 0     # 1 cycle: ALU, branches, address generation
    MEDIUM = 1   # 2 cycles: loads (cache-hit path), stores
    LONG = 2     # 4 cycles: integer multiply, FP add/sub/mul/compare
    VERY_LONG = 3  # 12 cycles: integer divide, FP divide

    @property
    def cycles(self) -> int:
        return _LATENCY_CYCLES[self]


_LATENCY_CYCLES = {
    LatencyClass.FAST: 1,
    LatencyClass.MEDIUM: 2,
    LatencyClass.LONG: 4,
    LatencyClass.VERY_LONG: 12,
}


# The twelve decode control flags of paper Table 2, in signal-bit order.
FLAG_NAMES: Tuple[str, ...] = (
    "is_int",     # integer-unit operation
    "is_fp",      # floating-point-unit operation
    "is_signed",  # signed (vs unsigned) arithmetic / sign-extending load
    "is_branch",  # conditional branch
    "is_uncond",  # unconditional control transfer
    "is_ld",      # memory load
    "is_st",      # memory store
    "mem_lr",     # unaligned left/right memory access (LWL/LWR style)
    "is_rr",      # register-register format
    "is_disp",    # displacement (base+offset) addressing
    "is_direct",  # direct (absolute-target) jump
    "is_trap",    # system trap / syscall
)


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode: format plus its decode signals."""

    mnemonic: str
    code: int
    fmt: Format
    flags: FrozenSet[str] = frozenset()
    lat: LatencyClass = LatencyClass.FAST
    mem_size: int = 0  # bytes accessed (0 for non-memory ops)

    def __post_init__(self) -> None:
        unknown = self.flags - set(FLAG_NAMES)
        if unknown:
            raise ValueError(f"{self.mnemonic}: unknown flags {sorted(unknown)}")
        if not 0 <= self.code <= 0xFF:
            raise ValueError(f"{self.mnemonic}: opcode {self.code} not 8-bit")

    def has(self, flag: str) -> bool:
        """Whether this opcode sets the named decode flag."""
        return flag in self.flags

    @property
    def is_control(self) -> bool:
        """True for instructions that end an ITR trace (branch or jump)."""
        return "is_branch" in self.flags or "is_uncond" in self.flags

    @property
    def is_memory(self) -> bool:
        return "is_ld" in self.flags or "is_st" in self.flags

    @property
    def num_rsrc(self) -> int:
        """Number of register sources implied by the format."""
        return _FORMAT_SOURCES[self.fmt]

    @property
    def num_rdst(self) -> int:
        """Number of register destinations implied by the format."""
        return _FORMAT_DESTS[self.fmt]

    def __repr__(self) -> str:
        return f"OpSpec({self.mnemonic}, code={self.code})"


_FORMAT_SOURCES: Dict[Format, int] = {
    Format.R: 2,
    Format.R2: 1,
    Format.SH: 1,
    Format.I: 1,
    Format.LUI: 0,
    Format.LOAD: 1,
    Format.STORE: 2,
    Format.BR2: 2,
    Format.BR1: 1,
    Format.J: 0,
    Format.JR: 1,
    Format.JALR: 1,
    Format.SYS: 0,
    Format.NONE: 0,
}

_FORMAT_DESTS: Dict[Format, int] = {
    Format.R: 1,
    Format.R2: 1,
    Format.SH: 1,
    Format.I: 1,
    Format.LUI: 1,
    Format.LOAD: 1,
    Format.STORE: 0,
    Format.BR2: 0,
    Format.BR1: 0,
    Format.J: 0,
    Format.JR: 0,
    Format.JALR: 1,
    Format.SYS: 0,
    Format.NONE: 0,
}


def _f(*names: str) -> FrozenSet[str]:
    return frozenset(names)


_INT = "is_int"
_FP = "is_fp"
_SGN = "is_signed"
_RR = "is_rr"
_DISP = "is_disp"

# ---------------------------------------------------------------------------
# The opcode table. Codes are stable across releases: tests and encodings
# depend on them.
# ---------------------------------------------------------------------------
_SPECS = [
    # -- no-op / system ------------------------------------------------------
    OpSpec("nop", 0x00, Format.NONE, _f(_INT)),
    OpSpec("syscall", 0x01, Format.SYS, _f(_INT, "is_trap")),
    OpSpec("break", 0x02, Format.SYS, _f(_INT, "is_trap")),

    # -- integer register-register ------------------------------------------
    OpSpec("add", 0x10, Format.R, _f(_INT, _SGN, _RR)),
    OpSpec("addu", 0x11, Format.R, _f(_INT, _RR)),
    OpSpec("sub", 0x12, Format.R, _f(_INT, _SGN, _RR)),
    OpSpec("subu", 0x13, Format.R, _f(_INT, _RR)),
    OpSpec("and", 0x14, Format.R, _f(_INT, _RR)),
    OpSpec("or", 0x15, Format.R, _f(_INT, _RR)),
    OpSpec("xor", 0x16, Format.R, _f(_INT, _RR)),
    OpSpec("nor", 0x17, Format.R, _f(_INT, _RR)),
    OpSpec("slt", 0x18, Format.R, _f(_INT, _SGN, _RR)),
    OpSpec("sltu", 0x19, Format.R, _f(_INT, _RR)),
    OpSpec("mult", 0x1A, Format.R, _f(_INT, _SGN, _RR), LatencyClass.LONG),
    OpSpec("multu", 0x1B, Format.R, _f(_INT, _RR), LatencyClass.LONG),
    OpSpec("div", 0x1C, Format.R, _f(_INT, _SGN, _RR), LatencyClass.VERY_LONG),
    OpSpec("divu", 0x1D, Format.R, _f(_INT, _RR), LatencyClass.VERY_LONG),
    OpSpec("sllv", 0x1E, Format.R, _f(_INT, _RR)),
    OpSpec("srlv", 0x1F, Format.R, _f(_INT, _RR)),
    OpSpec("srav", 0x20, Format.R, _f(_INT, _SGN, _RR)),

    # -- integer shifts by immediate amount ----------------------------------
    OpSpec("sll", 0x21, Format.SH, _f(_INT, _RR)),
    OpSpec("srl", 0x22, Format.SH, _f(_INT, _RR)),
    OpSpec("sra", 0x23, Format.SH, _f(_INT, _SGN, _RR)),

    # -- integer immediates ---------------------------------------------------
    OpSpec("addi", 0x28, Format.I, _f(_INT, _SGN)),
    OpSpec("addiu", 0x29, Format.I, _f(_INT)),
    OpSpec("andi", 0x2A, Format.I, _f(_INT)),
    OpSpec("ori", 0x2B, Format.I, _f(_INT)),
    OpSpec("xori", 0x2C, Format.I, _f(_INT)),
    OpSpec("slti", 0x2D, Format.I, _f(_INT, _SGN)),
    OpSpec("sltiu", 0x2E, Format.I, _f(_INT)),
    OpSpec("lui", 0x2F, Format.LUI, _f(_INT)),

    # -- loads ----------------------------------------------------------------
    OpSpec("lb", 0x30, Format.LOAD, _f(_INT, _SGN, "is_ld", _DISP),
           LatencyClass.MEDIUM, 1),
    OpSpec("lbu", 0x31, Format.LOAD, _f(_INT, "is_ld", _DISP),
           LatencyClass.MEDIUM, 1),
    OpSpec("lh", 0x32, Format.LOAD, _f(_INT, _SGN, "is_ld", _DISP),
           LatencyClass.MEDIUM, 2),
    OpSpec("lhu", 0x33, Format.LOAD, _f(_INT, "is_ld", _DISP),
           LatencyClass.MEDIUM, 2),
    OpSpec("lw", 0x34, Format.LOAD, _f(_INT, _SGN, "is_ld", _DISP),
           LatencyClass.MEDIUM, 4),
    OpSpec("lwl", 0x35, Format.LOAD, _f(_INT, "is_ld", _DISP, "mem_lr"),
           LatencyClass.MEDIUM, 4),
    OpSpec("lwr", 0x36, Format.LOAD, _f(_INT, "is_ld", _DISP, "mem_lr"),
           LatencyClass.MEDIUM, 4),

    # -- stores ---------------------------------------------------------------
    OpSpec("sb", 0x38, Format.STORE, _f(_INT, "is_st", _DISP),
           LatencyClass.MEDIUM, 1),
    OpSpec("sh", 0x39, Format.STORE, _f(_INT, "is_st", _DISP),
           LatencyClass.MEDIUM, 2),
    OpSpec("sw", 0x3A, Format.STORE, _f(_INT, "is_st", _DISP),
           LatencyClass.MEDIUM, 4),
    OpSpec("swl", 0x3B, Format.STORE, _f(_INT, "is_st", _DISP, "mem_lr"),
           LatencyClass.MEDIUM, 4),
    OpSpec("swr", 0x3C, Format.STORE, _f(_INT, "is_st", _DISP, "mem_lr"),
           LatencyClass.MEDIUM, 4),

    # -- conditional branches -------------------------------------------------
    OpSpec("beq", 0x40, Format.BR2, _f(_INT, "is_branch")),
    OpSpec("bne", 0x41, Format.BR2, _f(_INT, "is_branch")),
    OpSpec("blez", 0x42, Format.BR1, _f(_INT, _SGN, "is_branch")),
    OpSpec("bgtz", 0x43, Format.BR1, _f(_INT, _SGN, "is_branch")),
    OpSpec("bltz", 0x44, Format.BR1, _f(_INT, _SGN, "is_branch")),
    OpSpec("bgez", 0x45, Format.BR1, _f(_INT, _SGN, "is_branch")),

    # -- jumps ----------------------------------------------------------------
    OpSpec("j", 0x48, Format.J, _f(_INT, "is_uncond", "is_direct")),
    OpSpec("jal", 0x49, Format.J, _f(_INT, "is_uncond", "is_direct")),
    OpSpec("jr", 0x4A, Format.JR, _f(_INT, "is_uncond")),
    OpSpec("jalr", 0x4B, Format.JALR, _f(_INT, "is_uncond")),

    # -- floating point (single precision) ------------------------------------
    OpSpec("add.s", 0x50, Format.R, _f(_FP, _SGN, _RR), LatencyClass.LONG),
    OpSpec("sub.s", 0x51, Format.R, _f(_FP, _SGN, _RR), LatencyClass.LONG),
    OpSpec("mul.s", 0x52, Format.R, _f(_FP, _SGN, _RR), LatencyClass.LONG),
    OpSpec("div.s", 0x53, Format.R, _f(_FP, _SGN, _RR), LatencyClass.VERY_LONG),
    OpSpec("abs.s", 0x54, Format.R2, _f(_FP, _RR), LatencyClass.LONG),
    OpSpec("neg.s", 0x55, Format.R2, _f(_FP, _SGN, _RR), LatencyClass.LONG),
    OpSpec("mov.s", 0x56, Format.R2, _f(_FP, _RR)),
    OpSpec("cvt.s.w", 0x57, Format.R2, _f(_FP, _SGN, _RR), LatencyClass.LONG),
    OpSpec("cvt.w.s", 0x58, Format.R2, _f(_FP, _SGN, _RR), LatencyClass.LONG),
    OpSpec("c.lt.s", 0x59, Format.R, _f(_FP, _SGN, _RR), LatencyClass.LONG),
    OpSpec("c.le.s", 0x5A, Format.R, _f(_FP, _SGN, _RR), LatencyClass.LONG),
    OpSpec("c.eq.s", 0x5B, Format.R, _f(_FP, _RR), LatencyClass.LONG),
    OpSpec("lwc1", 0x5C, Format.LOAD, _f(_FP, "is_ld", _DISP),
           LatencyClass.MEDIUM, 4),
    OpSpec("swc1", 0x5D, Format.STORE, _f(_FP, "is_st", _DISP),
           LatencyClass.MEDIUM, 4),
]


#: Opcode table indexed by mnemonic.
BY_MNEMONIC: Dict[str, OpSpec] = {spec.mnemonic: spec for spec in _SPECS}

#: Opcode table indexed by 8-bit code.
BY_CODE: Dict[int, OpSpec] = {spec.code: spec for spec in _SPECS}

if len(BY_MNEMONIC) != len(_SPECS) or len(BY_CODE) != len(_SPECS):
    raise AssertionError("duplicate opcode mnemonic or code in table")


def lookup(mnemonic: str) -> OpSpec:
    """Look up an opcode by mnemonic; raises ``KeyError`` with suggestions."""
    try:
        return BY_MNEMONIC[mnemonic]
    except KeyError:
        raise KeyError(f"unknown mnemonic {mnemonic!r}") from None


def from_code(code: int) -> Optional[OpSpec]:
    """Look up an opcode by its 8-bit code, or ``None`` if unassigned.

    Unassigned codes matter for fault injection: a bit flip in the opcode
    signal may select a code with no architected meaning, which the
    execution model treats as producing an undefined (zero) result.
    """
    return BY_CODE.get(code)


def all_specs() -> Tuple[OpSpec, ...]:
    """All opcode specs in table order."""
    return tuple(_SPECS)
