"""Deterministic random-number utilities.

Every stochastic component of the library (synthetic workload models, fault
injection campaigns) draws from an explicitly-seeded generator created here,
so experiments are reproducible bit-for-bit across runs and machines.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def stream_material(seed: int, *stream: object) -> str:
    """Canonical seed material for a named RNG stream.

    The material is an injective encoding of ``(seed, *stream)``: every
    component is ``repr``-quoted, so component boundaries survive (the
    tuple ``("a:1", 2)`` can never collide with ``("a", 1, 2)``). This is
    the determinism contract the parallel campaign engine relies on — a
    trial's stream is a pure function of its identity, never of worker
    count, shard boundaries, or completion order.
    """
    return f"{seed}:" + ":".join(repr(part) for part in stream)


def make_rng(seed: int, *stream: object) -> random.Random:
    """Create an independent :class:`random.Random` for a named stream.

    ``stream`` components (benchmark name, experiment id, trial number, ...)
    are folded into the seed so that e.g. the fault injector for ``gcc``
    trial 3 never shares a sequence with trial 4, regardless of how many
    draws each makes.

    >>> make_rng(1, "gcc", 3).random() != make_rng(1, "gcc", 4).random()
    True
    """
    return random.Random(stream_material(seed, *stream))


def split_seed(seed: int, *stream: object) -> int:
    """Derive a child integer seed for a named sub-stream."""
    return make_rng(seed, *stream).getrandbits(63)


def stream_uniform(seed: int, *stream: object) -> float:
    """One deterministic ``U[0, 1)`` draw for a named stream.

    Identity-derived like :func:`make_rng`: the value depends only on
    ``(seed, *stream)``. The campaign scheduler uses this for retry
    backoff jitter — every attempt of every work unit gets its own
    jitter, reproducible across runs and independent of worker count or
    completion order.
    """
    return make_rng(seed, *stream).random()


def zipf_weights(n: int, alpha: float) -> List[float]:
    """Unnormalized Zipf weights ``1/rank**alpha`` for ranks ``1..n``.

    Used to model trace popularity: a few hot static traces contribute most
    dynamic instructions (paper Figures 1-2).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    return [1.0 / (rank ** alpha) for rank in range(1, n + 1)]


class WeightedSampler:
    """O(1) sampling from a fixed discrete distribution (alias method).

    The synthetic workload models draw hundreds of thousands of trace ids
    per run; Walker's alias method keeps that cheap and deterministic.
    """

    __slots__ = ("_n", "_prob", "_alias")

    def __init__(self, weights: Sequence[float]):
        if not weights:
            raise ValueError("weights must be non-empty")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        n = len(weights)
        scaled = [w * n / total for w in weights]
        small = [i for i, w in enumerate(scaled) if w < 1.0]
        large = [i for i, w in enumerate(scaled) if w >= 1.0]
        prob = [0.0] * n
        alias = [0] * n
        while small and large:
            s = small.pop()
            g = large.pop()
            prob[s] = scaled[s]
            alias[s] = g
            scaled[g] = (scaled[g] + scaled[s]) - 1.0
            if scaled[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        for i in large + small:
            prob[i] = 1.0
        self._n = n
        self._prob = prob
        self._alias = alias

    def __len__(self) -> int:
        return self._n

    def sample(self, rng: random.Random) -> int:
        """Draw one index according to the weight distribution."""
        i = rng.randrange(self._n)
        if rng.random() < self._prob[i]:
            return i
        return self._alias[i]

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw ``count`` independent indices."""
        return [self.sample(rng) for _ in range(count)]


def reservoir_sample(items: Iterable[T], k: int, rng: random.Random) -> List[T]:
    """Uniformly sample ``k`` items from a stream of unknown length."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    chosen: List[T] = []
    for index, item in enumerate(items):
        if index < k:
            chosen.append(item)
        else:
            j = rng.randint(0, index)
            if j < k:
                chosen[j] = item
    return chosen
