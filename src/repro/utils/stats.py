"""Lightweight statistics containers shared by simulators and experiments.

These deliberately avoid numpy so that the core simulators have zero
dependencies; the experiment layer may convert to numpy for analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple


class Counter:
    """A named bag of integer event counters with dict-like access.

    >>> c = Counter()
    >>> c.add("fetch"); c.add("fetch", 2)
    >>> c["fetch"]
    3
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def items(self) -> Iterable[Tuple[str, int]]:
        """(name, count) pairs."""
        return self._counts.items()

    def total(self) -> int:
        """Sum of all counters."""
        return sum(self._counts.values())

    def as_dict(self) -> Dict[str, int]:
        """Copy of the counters as a plain dict."""
        return dict(self._counts)

    def merge(self, other: "Counter") -> None:
        """Accumulate another counter into this one."""
        for name, count in other.items():
            self.add(name, count)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counter({body})"


class Histogram:
    """Fixed-width binned histogram over non-negative values.

    Mirrors the paper's Figures 3-4, which bin trace repeat distances into
    500-instruction buckets up to 10,000 with an implicit overflow bucket.
    """

    __slots__ = ("bin_width", "num_bins", "_bins", "_overflow", "_count",
                 "_weight_total")

    def __init__(self, bin_width: int, num_bins: int):
        if bin_width < 1:
            raise ValueError(f"bin_width must be >= 1, got {bin_width}")
        if num_bins < 1:
            raise ValueError(f"num_bins must be >= 1, got {num_bins}")
        self.bin_width = bin_width
        self.num_bins = num_bins
        self._bins = [0.0] * num_bins
        self._overflow = 0.0
        self._count = 0
        self._weight_total = 0.0

    def record(self, value: float, weight: float = 1.0) -> None:
        """Add ``weight`` to the bin containing ``value``."""
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        index = int(value // self.bin_width)
        if index >= self.num_bins:
            self._overflow += weight
        else:
            self._bins[index] += weight
        self._count += 1
        self._weight_total += weight

    @property
    def count(self) -> int:
        """Number of recorded observations (not weight)."""
        return self._count

    @property
    def total_weight(self) -> float:
        return self._weight_total

    @property
    def overflow(self) -> float:
        return self._overflow

    def bin_edges(self) -> List[int]:
        """Upper edge of each bin: ``[w, 2w, ...]`` as in "< 500", "< 1000"."""
        return [(i + 1) * self.bin_width for i in range(self.num_bins)]

    def weights(self) -> List[float]:
        """Per-bin accumulated weights (excludes overflow)."""
        return list(self._bins)

    def cumulative_fraction(self) -> List[float]:
        """Cumulative weight fraction at each bin's upper edge.

        This is exactly the quantity plotted in paper Figures 3-4: the
        fraction of dynamic instructions contributed by traces repeating
        within each distance.
        """
        if self._weight_total == 0:
            return [0.0] * self.num_bins
        out: List[float] = []
        running = 0.0
        for weight in self._bins:
            running += weight
            out.append(running / self._weight_total)
        return out

    def __repr__(self) -> str:
        return (f"Histogram(bin_width={self.bin_width}, "
                f"num_bins={self.num_bins}, count={self._count})")


@dataclass
class Summary:
    """Running scalar summary: count / mean / variance / min / max.

    Uses Welford's algorithm so it is numerically stable for long runs.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    minimum: float = math.inf
    maximum: float = -math.inf

    def record(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


def cumulative_share(weights: Sequence[float]) -> List[float]:
    """Cumulative fraction of total, for descending-sorted contributions.

    This generates the curves of paper Figures 1-2: sort static traces by
    dynamic-instruction contribution, then plot the running share.
    """
    total = float(sum(weights))
    if total <= 0:
        return [0.0] * len(weights)
    out: List[float] = []
    running = 0.0
    for weight in sorted(weights, reverse=True):
        running += weight
        out.append(running / total)
    return out


def wilson_interval(successes: int, total: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used to put error bars on fault-campaign outcome fractions: with the
    reproduction's reduced trial counts (e.g. 40 vs the paper's 1000),
    the interval communicates how much the percentages can wobble.

    >>> low, high = wilson_interval(30, 40)
    >>> 0.59 < low < 0.61 and 0.85 < high < 0.87
    True
    """
    if total < 0 or successes < 0 or successes > total:
        raise ValueError(f"bad proportion {successes}/{total}")
    if total == 0:
        return 0.0, 1.0
    p = successes / total
    denom = 1 + z * z / total
    center = (p + z * z / (2 * total)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / total
                                     + z * z / (4 * total * total))
    return max(0.0, center - margin), min(1.0, center + margin)


def wilson_halfwidth(successes: int, total: int, z: float = 1.96) -> float:
    """Half-width of the Wilson score interval for a proportion.

    The campaign scheduler's statistical early-stopping rule: once the
    half-width of the tracked outcome proportion drops below the
    configured target, further trials cannot move the estimate outside
    the interval, so the campaign stops dispatching work units.

    >>> wilson_halfwidth(0, 0)
    0.5
    >>> round(wilson_halfwidth(30, 40), 3)
    0.129
    """
    low, high = wilson_interval(successes, total, z)
    return (high - low) / 2.0


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not sorted_values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = fraction * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(sorted_values[low])
    t = position - low
    return float(sorted_values[low]) * (1 - t) + float(sorted_values[high]) * t
