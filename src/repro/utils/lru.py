"""Least-recently-used tracking for set-associative hardware structures.

Two implementations are provided:

* :class:`LruStack` — a true-LRU recency stack for one cache set, the
  policy the paper assumes for the ITR cache.
* :class:`TreePlru` — tree pseudo-LRU, offered as a cheaper hardware
  alternative and used by ablation experiments to check that the paper's
  coverage results are not an artifact of exact LRU.
"""

from __future__ import annotations

from typing import List


class LruStack:
    """True-LRU recency order over ``ways`` slots of a single cache set.

    Way indices are small integers ``0..ways-1``. Position 0 of the internal
    stack is the most recently used way; the last position is the LRU way.
    """

    __slots__ = ("_order",)

    def __init__(self, ways: int):
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        # Initial order is arbitrary; hardware typically resets to way order.
        self._order: List[int] = list(range(ways))

    @property
    def ways(self) -> int:
        return len(self._order)

    def touch(self, way: int) -> None:
        """Mark ``way`` as most recently used."""
        self._order.remove(way)
        self._order.insert(0, way)

    def victim(self) -> int:
        """Return the least recently used way (does not modify recency)."""
        return self._order[-1]

    def victim_preferring(self, preferred: List[bool]) -> int:
        """Return the LRU way among those flagged ``preferred``.

        Falls back to plain LRU when no way is preferred. This implements
        the paper's Section 2.3 optimization of preferring to evict
        *checked* signatures (whose loss does not reduce detection
        coverage): pass ``preferred[way] = line is checked``.
        """
        for way in reversed(self._order):
            if preferred[way]:
                return way
        return self._order[-1]

    def recency(self, way: int) -> int:
        """Position of ``way`` in the recency order (0 = MRU)."""
        return self._order.index(way)

    def order(self) -> List[int]:
        """A copy of the full recency order, MRU first."""
        return list(self._order)

    def __repr__(self) -> str:
        return f"LruStack(order={self._order})"


class TreePlru:
    """Tree-based pseudo-LRU for a power-of-two number of ways.

    Maintains ``ways - 1`` internal direction bits arranged as an implicit
    binary tree. ``touch`` points the bits *away* from the touched way;
    ``victim`` follows the bits to a leaf.
    """

    __slots__ = ("_ways", "_bits")

    def __init__(self, ways: int):
        if ways < 1 or ways & (ways - 1):
            raise ValueError(f"ways must be a power of two >= 1, got {ways}")
        self._ways = ways
        self._bits: List[int] = [0] * max(ways - 1, 1)

    @property
    def ways(self) -> int:
        return self._ways

    def touch(self, way: int) -> None:
        """Point the tree bits away from ``way`` (mark it recently used)."""
        if not 0 <= way < self._ways:
            raise ValueError(f"way {way} out of range 0..{self._ways - 1}")
        if self._ways == 1:
            return
        node = 0
        lo, hi = 0, self._ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # next victim search goes right
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0  # next victim search goes left
                node = 2 * node + 2
                lo = mid

    def victim(self) -> int:
        """Follow the tree bits to the pseudo-LRU victim way."""
        if self._ways == 1:
            return 0
        node = 0
        lo, hi = 0, self._ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
                hi = mid
            else:
                node = 2 * node + 2
                lo = mid
        return lo

    def victim_preferring(self, preferred: List[bool]) -> int:
        """PLRU victim, overridden to the PLRU-most preferred way if any.

        Pseudo-LRU has no total order, so "LRU among preferred" is
        approximated by scanning ways in victim-first tree order.
        """
        for way in self._tree_order():
            if preferred[way]:
                return way
        return self.victim()

    def _tree_order(self) -> List[int]:
        """Ways ordered from most victim-like to least, per current bits."""
        order: List[int] = []

        def walk(node: int, lo: int, hi: int, inverted: bool) -> None:
            if hi - lo == 1:
                order.append(lo)
                return
            mid = (lo + hi) // 2
            bit = self._bits[node] if node < len(self._bits) else 0
            first_left = (bit == 0) != inverted
            if first_left:
                walk(2 * node + 1, lo, mid, inverted)
                walk(2 * node + 2, mid, hi, inverted)
            else:
                walk(2 * node + 2, mid, hi, inverted)
                walk(2 * node + 1, lo, mid, inverted)

        walk(0, 0, self._ways, False)
        return order

    def __repr__(self) -> str:
        return f"TreePlru(ways={self._ways}, bits={self._bits})"


def make_replacement(policy: str, ways: int):
    """Factory: build a replacement tracker by policy name.

    ``policy`` is ``"lru"`` (default everywhere in the paper) or ``"plru"``.
    """
    if policy == "lru":
        return LruStack(ways)
    if policy == "plru":
        return TreePlru(ways)
    raise ValueError(f"unknown replacement policy {policy!r}")
