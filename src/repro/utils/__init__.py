"""Shared utility layer: bit operations, LRU policies, RNG, stats, tables."""

from .bitops import (
    OneHot,
    check_fits,
    extract,
    flip_bit,
    insert,
    mask,
    parity,
    popcount,
    rotate_left,
    sign_extend,
    to_unsigned,
)
from .lru import LruStack, TreePlru, make_replacement
from .rng import WeightedSampler, make_rng, reservoir_sample, split_seed, zipf_weights
from .stats import (
    Counter,
    Histogram,
    Summary,
    cumulative_share,
    percentile,
    wilson_interval,
)
from .tables import render_bar, render_series, render_stacked_rows, render_table

__all__ = [
    "OneHot",
    "check_fits",
    "extract",
    "flip_bit",
    "insert",
    "mask",
    "parity",
    "popcount",
    "rotate_left",
    "sign_extend",
    "to_unsigned",
    "LruStack",
    "TreePlru",
    "make_replacement",
    "WeightedSampler",
    "make_rng",
    "reservoir_sample",
    "split_seed",
    "zipf_weights",
    "Counter",
    "Histogram",
    "Summary",
    "cumulative_share",
    "percentile",
    "wilson_interval",
    "render_bar",
    "render_series",
    "render_stacked_rows",
    "render_table",
]
