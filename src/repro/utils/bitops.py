"""Bit-manipulation helpers used across the ISA, ITR and fault packages.

Everything in this module works on plain non-negative Python integers
interpreted as fixed-width bit vectors. Widths are always explicit: the
hardware being modeled has concrete field widths (paper Table 2) and this
module is where those widths are enforced.
"""

from __future__ import annotations

from ..errors import EncodingError


def mask(width: int) -> int:
    """Return a bit mask with the low ``width`` bits set.

    >>> mask(4)
    15
    >>> mask(0)
    0
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def check_fits(value: int, width: int, name: str = "value") -> int:
    """Validate that ``value`` fits in an unsigned field of ``width`` bits.

    Returns the value unchanged so it can be used inline while packing.
    Raises :class:`EncodingError` otherwise.
    """
    if value < 0 or value > mask(width):
        raise EncodingError(
            f"{name}={value} does not fit in {width} unsigned bits"
        )
    return value


def extract(word: int, offset: int, width: int) -> int:
    """Extract ``width`` bits of ``word`` starting at bit ``offset``."""
    return (word >> offset) & mask(width)


def insert(word: int, offset: int, width: int, value: int) -> int:
    """Return ``word`` with ``width`` bits at ``offset`` replaced by ``value``."""
    check_fits(value, width, "field")
    cleared = word & ~(mask(width) << offset)
    return cleared | (value << offset)


def flip_bit(word: int, bit: int) -> int:
    """Return ``word`` with bit number ``bit`` inverted.

    This is the elementary single-event-upset operation of the fault model.
    """
    if bit < 0:
        raise ValueError(f"bit index must be non-negative, got {bit}")
    return word ^ (1 << bit)


def popcount(word: int) -> int:
    """Number of set bits in ``word``."""
    return bin(word).count("1")


def parity(word: int) -> int:
    """Even-parity bit of ``word``: 1 if the number of set bits is odd.

    The ITR cache stores this alongside each signature so that a fault
    *inside the cache* can be told apart from a fault in the previous trace
    instance (paper Section 2.4).
    """
    return popcount(word) & 1


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement.

    >>> sign_extend(0xFFFF, 16)
    -1
    >>> sign_extend(0x7FFF, 16)
    32767
    """
    value &= mask(width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def to_unsigned(value: int, width: int) -> int:
    """Wrap a (possibly negative) integer into ``width`` unsigned bits."""
    return value & mask(width)


def rotate_left(word: int, amount: int, width: int) -> int:
    """Rotate ``word`` left by ``amount`` within a ``width``-bit register."""
    amount %= width
    word &= mask(width)
    return ((word << amount) | (word >> (width - amount))) & mask(width)


class OneHot:
    """One-hot encoded state register with fault detection.

    The ITR ROB control bits (``chk``, ``miss``, ``retry``) are stored
    one-hot so that any single bit flip produces an *invalid* code word
    (zero or two bits set) rather than silently selecting a different legal
    state (paper Section 2.4). The paper enumerates four states:

    ==============================  ========
    state                           encoding
    ==============================  ========
    none set                        0001
    chk and retry set               0010
    chk set, retry not set          0100
    miss set                        1000
    ==============================  ========
    """

    #: Mapping from symbolic state name to its one-hot code.
    STATES = {
        "none": 0b0001,
        "chk_retry": 0b0010,
        "chk": 0b0100,
        "miss": 0b1000,
    }

    _DECODE = {code: name for name, code in STATES.items()}

    __slots__ = ("_code",)

    def __init__(self, state: str = "none"):
        self._code = self._encode(state)

    @classmethod
    def _encode(cls, state: str) -> int:
        try:
            return cls.STATES[state]
        except KeyError:
            raise ValueError(
                f"unknown one-hot state {state!r}; "
                f"expected one of {sorted(cls.STATES)}"
            ) from None

    @property
    def code(self) -> int:
        """The raw 4-bit one-hot code word (may be corrupt after a fault)."""
        return self._code

    @property
    def state(self) -> str:
        """Decode the current state name; raises on an invalid code word."""
        try:
            return self._DECODE[self._code]
        except KeyError:
            raise ValueError(
                f"one-hot code 0b{self._code:04b} is not a legal state"
            ) from None

    def is_valid(self) -> bool:
        """True when exactly one legal bit is set."""
        return self._code in self._DECODE

    def set_state(self, state: str) -> None:
        """Transition to a named legal state."""
        self._code = self._encode(state)

    def inject_fault(self, bit: int) -> None:
        """Flip one bit of the code word (single-event upset)."""
        if not 0 <= bit < 4:
            raise ValueError(f"one-hot bit index must be 0..3, got {bit}")
        self._code = flip_bit(self._code, bit)

    def __repr__(self) -> str:
        label = self._DECODE.get(self._code, "INVALID")
        return f"OneHot(0b{self._code:04b} {label})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OneHot):
            return self._code == other._code
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._code)
