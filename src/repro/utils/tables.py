"""Plain-text table rendering for experiment output.

Experiment drivers print the same rows/series the paper's tables and figures
report; this module renders them as aligned ASCII so benchmark logs are
directly comparable to the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, float_digits: int = 2) -> str:
    """Render one table cell: floats get fixed digits, None becomes '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    float_digits: int = 2,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    text_rows: List[List[str]] = [
        [format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def render_series(
    label: str,
    xs: Sequence[Cell],
    ys: Sequence[Cell],
    x_name: str = "x",
    y_name: str = "y",
    float_digits: int = 2,
) -> str:
    """Render one figure series as a two-column table with a label header."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    return render_table(
        [x_name, y_name],
        [[x, y] for x, y in zip(xs, ys)],
        title=label,
        float_digits=float_digits,
    )


def render_bar(fraction: float, width: int = 40) -> str:
    """Render a unit-interval value as a text bar, for quick visual scans."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_stacked_rows(
    headers: Sequence[str],
    groups: Sequence[tuple],
    float_digits: int = 2,
) -> str:
    """Render grouped rows separated by blank lines (one group per config).

    ``groups`` is a sequence of ``(group_title, rows)`` pairs; used for the
    per-benchmark groupings of Figures 6-7.
    """
    parts: List[str] = []
    for group_title, rows in groups:
        parts.append(render_table(headers, rows, title=group_title,
                                  float_digits=float_digits))
    return "\n\n".join(parts)
