"""Single-event-upset injection on decode signals.

The paper's fault model (Section 4): flip one randomly selected bit of the
decode-signal vector of one randomly selected dynamic instruction. The
injector is a decode-stage hook for the cycle simulator — it sees every
*decoded* instruction (wrong-path included, as real hardware would) and
tampers with exactly one.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..isa.decode_signals import TOTAL_WIDTH, DecodeSignals, field_of_bit
from ..utils.rng import make_rng


@dataclass
class FaultSpec:
    """One planned single-event upset."""

    decode_index: int    # which dynamic decode slot to hit
    bit: int             # which of the 64 signal bits to flip

    def __post_init__(self) -> None:
        if not 0 <= self.bit < TOTAL_WIDTH:
            raise ValueError(f"bit {self.bit} outside 0..{TOTAL_WIDTH - 1}")
        if self.decode_index < 0:
            raise ValueError("decode_index must be non-negative")

    @property
    def field_name(self) -> str:
        """Table 2 field containing the flipped bit."""
        return field_of_bit(self.bit).name


class DecodeInjector:
    """Stateful decode hook implementing one :class:`FaultSpec`.

    Use one injector per simulation; ``fired`` records whether the target
    decode slot was actually reached (a fault planned beyond the end of a
    run never strikes).
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.fired = False
        self.fault_pc: Optional[int] = None
        self.original: Optional[DecodeSignals] = None
        self.tampered: Optional[DecodeSignals] = None

    def __call__(self, decode_index: int, pc: int,
                 signals: DecodeSignals) -> Tuple[DecodeSignals, bool]:
        """The pipeline's ``decode_tamper`` interface."""
        if decode_index != self.spec.decode_index or self.fired:
            return signals, False
        self.fired = True
        self.fault_pc = pc
        self.original = signals
        self.tampered = signals.with_bit_flipped(self.spec.bit)
        return self.tampered, True


@dataclass(frozen=True)
class FaultStrike:
    """One upset delivered by a multi-fault stream."""

    decode_index: int
    pc: int
    bit: int


class PoissonInjector:
    """Memoryless multi-fault decode hook for soak campaigns.

    Inter-arrival gaps between strikes are geometric with per-decode-slot
    probability ``rate`` — the discrete analogue of a Poisson process over
    the dynamic decode stream, so long runs see many independent upsets.
    Each strike flips one uniformly random signal bit. Wrong-path decodes
    are eligible, as with :class:`DecodeInjector`.
    """

    def __init__(self, rng: random.Random, rate: float,
                 max_strikes: Optional[int] = None):
        if not 0.0 < rate < 1.0:
            raise ValueError(f"rate must be in (0, 1), got {rate}")
        self._rng = rng
        self.rate = rate
        self.max_strikes = max_strikes
        self.strikes: List[FaultStrike] = []
        self._next_index = self._gap() - 1  # first strike's decode slot

    def _gap(self) -> int:
        """Geometric(rate) inter-arrival gap, >= 1 (inverse CDF)."""
        u = self._rng.random()
        return 1 + int(math.log(1.0 - u) / math.log(1.0 - self.rate))

    def __call__(self, decode_index: int, pc: int,
                 signals: DecodeSignals) -> Tuple[DecodeSignals, bool]:
        """The pipeline's ``decode_tamper`` interface."""
        if decode_index < self._next_index:
            return signals, False
        if self.max_strikes is not None \
                and len(self.strikes) >= self.max_strikes:
            return signals, False
        bit = self._rng.randrange(TOTAL_WIDTH)
        self.strikes.append(FaultStrike(decode_index, pc, bit))
        self._next_index = decode_index + self._gap()
        return signals.with_bit_flipped(bit), True


def random_fault(rng: random.Random, decode_count: int) -> FaultSpec:
    """Draw a uniformly random fault over a run of ``decode_count`` slots."""
    if decode_count < 1:
        raise ValueError("decode_count must be >= 1")
    return FaultSpec(
        decode_index=rng.randrange(decode_count),
        bit=rng.randrange(TOTAL_WIDTH),
    )


def fault_plan(seed: int, benchmark: str, trials: int,
               decode_count: int) -> list:
    """Deterministic list of faults for one benchmark campaign."""
    rng = make_rng(seed, "faults", benchmark)
    return [random_fault(rng, decode_count) for _ in range(trials)]
