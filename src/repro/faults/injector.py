"""Single-event-upset injection on decode signals.

The paper's fault model (Section 4): flip one randomly selected bit of the
decode-signal vector of one randomly selected dynamic instruction. The
injector is a decode-stage hook for the cycle simulator — it sees every
*decoded* instruction (wrong-path included, as real hardware would) and
tampers with exactly one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..isa.decode_signals import TOTAL_WIDTH, DecodeSignals, field_of_bit
from ..utils.rng import make_rng


@dataclass
class FaultSpec:
    """One planned single-event upset."""

    decode_index: int    # which dynamic decode slot to hit
    bit: int             # which of the 64 signal bits to flip

    def __post_init__(self) -> None:
        if not 0 <= self.bit < TOTAL_WIDTH:
            raise ValueError(f"bit {self.bit} outside 0..{TOTAL_WIDTH - 1}")
        if self.decode_index < 0:
            raise ValueError("decode_index must be non-negative")

    @property
    def field_name(self) -> str:
        """Table 2 field containing the flipped bit."""
        return field_of_bit(self.bit).name


class DecodeInjector:
    """Stateful decode hook implementing one :class:`FaultSpec`.

    Use one injector per simulation; ``fired`` records whether the target
    decode slot was actually reached (a fault planned beyond the end of a
    run never strikes).
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.fired = False
        self.fault_pc: Optional[int] = None
        self.original: Optional[DecodeSignals] = None
        self.tampered: Optional[DecodeSignals] = None

    def __call__(self, decode_index: int, pc: int,
                 signals: DecodeSignals) -> Tuple[DecodeSignals, bool]:
        """The pipeline's ``decode_tamper`` interface."""
        if decode_index != self.spec.decode_index or self.fired:
            return signals, False
        self.fired = True
        self.fault_pc = pc
        self.original = signals
        self.tampered = signals.with_bit_flipped(self.spec.bit)
        return self.tampered, True


def random_fault(rng: random.Random, decode_count: int) -> FaultSpec:
    """Draw a uniformly random fault over a run of ``decode_count`` slots."""
    if decode_count < 1:
        raise ValueError("decode_count must be >= 1")
    return FaultSpec(
        decode_index=rng.randrange(decode_count),
        bit=rng.randrange(TOTAL_WIDTH),
    )


def fault_plan(seed: int, benchmark: str, trials: int,
               decode_count: int) -> list:
    """Deterministic list of faults for one benchmark campaign."""
    rng = make_rng(seed, "faults", benchmark)
    return [random_fault(rng, decode_count) for _ in range(trials)]
