"""Faults inside the ITR cache itself (paper Section 2.4).

"Faults on the ITR cache will cause false machine check exceptions when
they are detected [...] This can be avoided by parity-protecting each
line in the ITR cache."

This campaign injects single-bit upsets into *resident ITR cache lines*
during otherwise fault-free kernel runs, with line parity enabled or
disabled, and classifies what happens:

* ``repaired``       — parity exposed the cache-internal fault on retry;
  the line was rewritten and the program completed correctly;
* ``false_machine_check`` — the corrupted line was detected but blamed on
  the previous trace instance: the machine aborted a *correct* program
  (exactly the failure parity prevents);
* ``masked``         — the corrupted line was overwritten or evicted (or
  never re-referenced) before causing any visible event;
* ``wrong_output``   — the program completed with incorrect output
  (must never happen: ITR-cache faults cannot corrupt dataflow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import DeadlockError, MachineCheckException
from ..itr.itr_cache import ItrCacheConfig
from ..uarch.config import PipelineConfig
from ..uarch.pipeline import build_pipeline
from ..utils.rng import make_rng
from ..utils.stats import Counter
from ..workloads.kernels import Kernel


@dataclass(frozen=True)
class CacheFaultResult:
    """One ITR-cache-fault trial."""

    benchmark: str
    cycle: int
    bit: int
    fired: bool
    classification: str   # repaired / false_machine_check / masked /
    #                       wrong_output / not_fired
    run_reason: str


@dataclass
class CacheFaultCampaignResult:
    benchmark: str
    parity: bool
    trials: List[CacheFaultResult] = field(default_factory=list)

    def counts(self) -> Counter:
        """Classification counts across all trials."""
        counter = Counter()
        for trial in self.trials:
            counter.add(trial.classification)
        return counter

    def false_machine_check_fraction(self) -> float:
        """False-machine-check fraction among fired trials."""
        fired = [t for t in self.trials if t.fired]
        if not fired:
            return 0.0
        return sum(t.classification == "false_machine_check"
                   for t in fired) / len(fired)

    def repaired_fraction(self) -> float:
        """In-place-repair fraction among fired trials."""
        fired = [t for t in self.trials if t.fired]
        if not fired:
            return 0.0
        return sum(t.classification == "repaired" for t in fired) \
            / len(fired)


def run_cache_fault_trial(kernel: Kernel, cycle: int, bit: int,
                          parity: bool = True,
                          observation_cycles: int = 120_000,
                          rng_token: int = 0) -> CacheFaultResult:
    """Corrupt one resident ITR cache line at ``cycle`` and observe.

    The victim line is the LRU-wise *most recently inserted valid* line
    choice is made deterministic by ``rng_token``.
    """
    program = kernel.program()
    config = PipelineConfig(itr_cache=ItrCacheConfig(
        entries=64, assoc=2, parity=parity))
    pipeline = build_pipeline(program, config=config,
                              inputs=kernel.inputs)
    rng = make_rng(rng_token, "cache-fault", kernel.name, cycle, bit)

    fired = False
    reason = "halted"
    try:
        while not pipeline.halted and pipeline.cycle < observation_cycles:
            if pipeline.cycle == cycle and not fired:
                lines = pipeline.itr.cache.valid_lines()
                if lines:
                    victim = lines[rng.randrange(len(lines))]
                    pipeline.itr.cache.inject_fault(victim.tag, bit)
                    fired = True
            pipeline.step_cycle()
        if not pipeline.halted:
            reason = "max_cycles"
    except MachineCheckException:
        reason = "machine_check"
    except DeadlockError:
        reason = "deadlock"

    if not fired:
        classification = "not_fired"
    elif reason == "machine_check":
        # The program itself was fault-free; any machine check is false.
        classification = "false_machine_check"
    elif pipeline.itr.stats.cache_faults_repaired > 0:
        classification = "repaired"
    elif reason == "halted" \
            and pipeline.output == kernel.expected_output:
        classification = "masked"
    else:
        classification = "wrong_output"

    return CacheFaultResult(
        benchmark=kernel.name,
        cycle=cycle,
        bit=bit,
        fired=fired,
        classification=classification,
        run_reason=reason,
    )


def run_cache_fault_campaign(kernel: Kernel, trials: int = 30,
                             seed: int = 24, parity: bool = True,
                             observation_cycles: int = 120_000
                             ) -> CacheFaultCampaignResult:
    """A deterministic ITR-cache-fault campaign over one kernel."""
    program = kernel.program()
    reference = build_pipeline(program, inputs=kernel.inputs)
    run = reference.run(max_cycles=observation_cycles)
    horizon = max(3, int(run.cycles * 0.7))

    rng = make_rng(seed, "cache-fault-plan", kernel.name)
    result = CacheFaultCampaignResult(benchmark=kernel.name, parity=parity)
    for index in range(trials):
        cycle = rng.randrange(2, horizon)
        bit = rng.randrange(64)
        result.trials.append(run_cache_fault_trial(
            kernel, cycle, bit, parity=parity,
            observation_cycles=observation_cycles, rng_token=index))
    return result
