"""Constant-memory mergeable campaign aggregates.

The campaign scheduler (:mod:`repro.faults.scheduler`) streams *partial
aggregates* back from its workers instead of per-trial result lists, so
a million-trial campaign costs O(work units) parent memory instead of
O(trials). That only works if folding trials into partials and merging
partials is **provably equivalent to the full per-trial reduction** —
which is what this module guarantees by construction:

* every aggregate field is a commutative-monoid accumulation (sums,
  counts, min, max) over per-trial values, so ``fold`` then ``merge``
  in *any* tree shape equals one flat fold (the Hypothesis property in
  ``tests/faults/test_merge.py`` pins this down);
* :meth:`to_dict` emits only integers and strings (means and fractions
  are derived by readers), so ``json.dumps(..., sort_keys=True)`` of a
  scheduler-mode aggregate is **byte-identical** to the serial
  campaign's trials folded flat — the equivalence contract the chaos
  suite asserts under worker kills, stalls and corrupt payloads.

Two aggregate shapes cover the three campaign kinds: single-fault and
pruned campaigns fold :class:`~repro.faults.outcomes.TrialResult`
(pruned mode with class weights), soak campaigns fold
:class:`~repro.faults.campaign.SoakTrialResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Tuple

from .outcomes import FIGURE8_ORDER, Outcome, TrialResult

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (campaign
    # imports nothing from here at module scope, but keep it one-way)
    from .campaign import SoakTrialResult


@dataclass
class ScalarStat:
    """Mergeable count/total/min/max over one per-trial scalar.

    Deliberately integer-only (the tracked scalars — instructions,
    cycles, rollback distances — are integers), so merge order can never
    perturb the serialized bytes through float rounding.
    """

    count: int = 0
    total: int = 0
    minimum: Optional[int] = None
    maximum: Optional[int] = None

    def record(self, value: int, weight: int = 1) -> None:
        """Fold one observation (``weight`` copies of ``value``)."""
        if weight <= 0:
            return
        self.count += weight
        self.total += weight * value
        self.minimum = value if self.minimum is None \
            else min(self.minimum, value)
        self.maximum = value if self.maximum is None \
            else max(self.maximum, value)

    def merge(self, other: "ScalarStat") -> None:
        """Accumulate another partial into this one (commutative)."""
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            self.minimum = other.minimum if self.minimum is None \
                else min(self.minimum, other.minimum)
        if other.maximum is not None:
            self.maximum = other.maximum if self.maximum is None \
                else max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        """Derived mean (not serialized; readers recompute)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON form: integers only, fixed key set."""
        return {"count": self.count, "total": self.total,
                "min": self.minimum, "max": self.maximum}


def _bump(counter: Dict[str, int], key: str, amount: int = 1) -> None:
    counter[key] = counter.get(key, 0) + amount


def _merge_counts(into: Dict[str, int], other: Dict[str, int]) -> None:
    for key, amount in other.items():
        _bump(into, key, amount)


def _sorted_counts(counter: Dict[str, int]) -> Dict[str, int]:
    return dict(sorted(counter.items()))


@dataclass
class FaultAggregate:
    """Streaming aggregate over single-fault (or pruned) campaign trials.

    ``weight`` on :meth:`record` supports pruned campaigns, where one
    representative trial stands in for every fault site in its
    equivalence class.
    """

    benchmark: str
    trials: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    effects: Dict[str, int] = field(default_factory=dict)
    detected_itr: int = 0
    itr_recoverable: int = 0
    spc_fired: int = 0
    resident: int = 0
    #: Coverage counters: injected / ITR-detected per decode-signal field.
    field_injected: Dict[str, int] = field(default_factory=dict)
    field_detected: Dict[str, int] = field(default_factory=dict)
    #: Latency counters over committed instructions per trial.
    instructions: ScalarStat = field(default_factory=ScalarStat)

    # ------------------------------------------------------------- folding
    def record(self, trial: TrialResult, weight: int = 1) -> None:
        """Fold one :class:`~repro.faults.outcomes.TrialResult`."""
        self.trials += weight
        _bump(self.outcomes, trial.outcome.value, weight)
        _bump(self.effects, trial.effect.value, weight)
        if trial.detected_itr:
            self.detected_itr += weight
        if trial.itr_recoverable:
            self.itr_recoverable += weight
        if trial.spc_fired:
            self.spc_fired += weight
        if trial.faulty_signature_resident:
            self.resident += weight
        _bump(self.field_injected, trial.field, weight)
        if trial.detected_itr:
            _bump(self.field_detected, trial.field, weight)
        self.instructions.record(trial.instructions_committed, weight)

    def record_degraded(self, count: int) -> None:
        """Fold ``count`` trials the scheduler could not run to a verdict
        (every dispatch attempt failed): graceful degradation lands them
        as ``harness_error`` instead of aborting the campaign."""
        if count <= 0:
            return
        self.trials += count
        _bump(self.outcomes, Outcome.HARNESS_ERROR.value, count)

    def merge(self, other: "FaultAggregate") -> None:
        """Accumulate another partial (commutative + associative)."""
        if other.benchmark != self.benchmark:
            raise ValueError(
                f"cannot merge aggregates of different campaigns "
                f"({self.benchmark!r} vs {other.benchmark!r})")
        self.trials += other.trials
        _merge_counts(self.outcomes, other.outcomes)
        _merge_counts(self.effects, other.effects)
        self.detected_itr += other.detected_itr
        self.itr_recoverable += other.itr_recoverable
        self.spc_fired += other.spc_fired
        self.resident += other.resident
        _merge_counts(self.field_injected, other.field_injected)
        _merge_counts(self.field_detected, other.field_detected)
        self.instructions.merge(other.instructions)

    @classmethod
    def fold(cls, benchmark: str, trials: Iterable[TrialResult],
             weights: Optional[Sequence[int]] = None) -> "FaultAggregate":
        """Flat per-trial reduction — the equivalence reference."""
        aggregate = cls(benchmark=benchmark)
        if weights is None:
            for trial in trials:
                aggregate.record(trial)
        else:
            for trial, weight in zip(trials, weights):
                aggregate.record(trial, weight)
        return aggregate

    # ------------------------------------------------------------- reading
    def detected_fraction(self) -> float:
        """The paper's headline: fraction of faults ITR detects."""
        return self.detected_itr / self.trials if self.trials else 0.0

    def harness_errors(self) -> int:
        """Trials the harness failed to run to a verdict."""
        return self.outcomes.get(Outcome.HARNESS_ERROR.value, 0)

    def figure8_row(self) -> Dict[str, float]:
        """Percentages per Figure 8 category, legend order (derived)."""
        return {outcome.value:
                (100.0 * self.outcomes.get(outcome.value, 0) / self.trials
                 if self.trials else 0.0)
                for outcome in FIGURE8_ORDER}

    def stop_statistic(self) -> Tuple[int, int]:
        """(successes, total) the early-stopping rule watches."""
        return self.detected_itr, self.trials

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON form: integer counters only, sorted keys."""
        return {
            "benchmark": self.benchmark,
            "trials": self.trials,
            "outcomes": _sorted_counts(self.outcomes),
            "effects": _sorted_counts(self.effects),
            "detected_itr": self.detected_itr,
            "itr_recoverable": self.itr_recoverable,
            "spc_fired": self.spc_fired,
            "resident": self.resident,
            "field_injected": _sorted_counts(self.field_injected),
            "field_detected": _sorted_counts(self.field_detected),
            "instructions": self.instructions.to_dict(),
        }


@dataclass
class SoakAggregate:
    """Streaming aggregate over multi-fault soak campaign trials.

    Mirrors :meth:`SoakCampaignResult.aggregate
    <repro.faults.campaign.SoakCampaignResult.aggregate>`'s event sums,
    but replaces the unbounded ``rollback_distances`` list with a
    :class:`ScalarStat` so the partial stays constant-size no matter how
    many trials (or rollbacks) a work unit covers.
    """

    benchmark: str
    trials: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    strikes: int = 0
    detections: int = 0
    retries: int = 0
    recoveries: int = 0
    machine_checks: int = 0
    rollbacks: int = 0
    watchdog_rollbacks: int = 0
    checkpoints: int = 0
    instructions: ScalarStat = field(default_factory=ScalarStat)
    cycles: ScalarStat = field(default_factory=ScalarStat)
    rollback_distance: ScalarStat = field(default_factory=ScalarStat)

    # ------------------------------------------------------------- folding
    def record(self, trial: "SoakTrialResult") -> None:
        """Fold one :class:`~repro.faults.campaign.SoakTrialResult`."""
        self.trials += 1
        _bump(self.outcomes, trial.outcome)
        self.strikes += trial.strikes
        self.detections += trial.detections
        self.retries += trial.retries
        self.recoveries += trial.recoveries
        self.machine_checks += trial.machine_checks
        self.watchdog_rollbacks += trial.watchdog_rollbacks
        self.rollbacks += trial.rollbacks
        self.checkpoints += trial.checkpoints
        self.instructions.record(trial.instructions)
        self.cycles.record(trial.cycles)
        for distance in trial.rollback_distances:
            self.rollback_distance.record(distance)

    def record_degraded(self, count: int) -> None:
        """Fold ``count`` permanently-failed trials as ``harness_error``."""
        if count <= 0:
            return
        self.trials += count
        _bump(self.outcomes, "harness_error", count)

    def merge(self, other: "SoakAggregate") -> None:
        """Accumulate another partial (commutative + associative)."""
        if other.benchmark != self.benchmark:
            raise ValueError(
                f"cannot merge aggregates of different campaigns "
                f"({self.benchmark!r} vs {other.benchmark!r})")
        self.trials += other.trials
        _merge_counts(self.outcomes, other.outcomes)
        self.strikes += other.strikes
        self.detections += other.detections
        self.retries += other.retries
        self.recoveries += other.recoveries
        self.machine_checks += other.machine_checks
        self.rollbacks += other.rollbacks
        self.watchdog_rollbacks += other.watchdog_rollbacks
        self.checkpoints += other.checkpoints
        self.instructions.merge(other.instructions)
        self.cycles.merge(other.cycles)
        self.rollback_distance.merge(other.rollback_distance)

    @classmethod
    def fold(cls, benchmark: str,
             trials: Iterable["SoakTrialResult"]) -> "SoakAggregate":
        """Flat per-trial reduction — the equivalence reference."""
        aggregate = cls(benchmark=benchmark)
        for trial in trials:
            aggregate.record(trial)
        return aggregate

    # ------------------------------------------------------------- reading
    def ok_fraction(self) -> float:
        """Fraction of trials that reconverged with golden."""
        return self.outcomes.get("ok", 0) / self.trials if self.trials \
            else 0.0

    def harness_errors(self) -> int:
        """Trials the harness failed to run to a verdict."""
        return self.outcomes.get("harness_error", 0)

    def stop_statistic(self) -> Tuple[int, int]:
        """(successes, total) the early-stopping rule watches."""
        return self.outcomes.get("ok", 0), self.trials

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON form: integer counters only, sorted keys."""
        return {
            "benchmark": self.benchmark,
            "trials": self.trials,
            "outcomes": _sorted_counts(self.outcomes),
            "strikes": self.strikes,
            "detections": self.detections,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "machine_checks": self.machine_checks,
            "rollbacks": self.rollbacks,
            "watchdog_rollbacks": self.watchdog_rollbacks,
            "checkpoints": self.checkpoints,
            "instructions": self.instructions.to_dict(),
            "cycles": self.cycles.to_dict(),
            "rollback_distance": self.rollback_distance.to_dict(),
        }
