"""Parallel deterministic campaign execution engine.

Fault-injection campaigns are embarrassingly parallel: every trial is a
pure function of ``(program, config, seed, fault_spec)``. This module
fans trials across a :class:`concurrent.futures.ProcessPoolExecutor`
while keeping the results **bit-identical to a serial run**, which rests
on three invariants:

1. **Identity-derived randomness.** A trial's RNG stream (soak) or fault
   spec (single-fault plan, generated once in the parent) is a pure
   function of the trial's identity — never of worker count, shard
   layout, or completion order.

2. **Trial-order reassembly.** Workers may finish in any order; results
   are reassembled by trial index before aggregation, so JSON exports
   and resumable soak partials are byte-identical to serial output.

3. **Warm-start workers.** Each worker process builds its campaign
   context once (assemble the kernel, build the pristine
   :class:`~repro.arch.state.ArchState`, compute or fetch the memoized
   golden final state) and every trial warm-starts from a copy-on-write
   fork of that state — the per-trial setup cost is paid per *worker*,
   not per trial.

Crash isolation extends across process boundaries for soak campaigns: a
trial whose worker raises reports ``harness_error`` via the in-worker
isolation wrapper, and a trial whose worker process *dies* (e.g. is
killed) is blamed by isolation — a dead worker breaks its whole pool
without saying which trial killed it, so every trial pending at the
breakage is retried in its own single-trial pool, where a second death
is unambiguous and classifies that trial ``harness_error`` while the
innocent bystanders complete. In both cases the rest of the campaign
completes and resumable partials stay valid.

The unit of scheduling is a single trial, so "sharding" can never change
results; :func:`shard_round_robin` exists for tests and callers that
want a static decomposition to reason about.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from .injector import FaultSpec
from .outcomes import TrialResult

T = TypeVar("T")

#: Times a trial's worker process may die before the trial is classified
#: ``harness_error``: the first death happens in a shared pool (where the
#: killer is ambiguous), the second in a dedicated single-trial pool
#: (where it is not).
_MAX_WORKER_DEATHS = 2


def _mp_context():
    """The ``fork`` start method where available (Linux/macOS).

    Forked workers inherit the parent's loaded modules — including any
    test-applied monkeypatches — and make warm-start initialization
    cheap. Falls back to the platform default elsewhere.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def resolve_workers(workers: Optional[object]) -> Optional[int]:
    """Normalize a ``--workers`` value to ``None`` (serial) or an int.

    Accepts ``None``/``0``/``"serial"`` (serial in-process execution),
    ``"auto"`` (one worker per available CPU), or a positive integer /
    its string form (that many worker processes; ``1`` still exercises
    the cross-process engine with a single worker).
    """
    if workers is None:
        return None
    if isinstance(workers, str):
        text = workers.strip().lower()
        if text in ("", "none", "serial"):
            return None
        if text == "auto":
            return max(1, os.cpu_count() or 1)
        workers = int(text)
    count = int(workers)
    if count == 0:
        return None
    if count < 0:
        raise ValueError(f"workers must be >= 0, got {count}")
    return count


def shard_round_robin(items: Sequence[T], shards: int) -> List[List[T]]:
    """Deterministic round-robin decomposition of a trial list.

    Purely a reasoning/testing aid: the engine schedules single trials
    dynamically, and because every trial's randomness derives from its
    identity alone, *any* decomposition — including this one — yields
    the same per-trial results.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return [list(items[shard::shards]) for shard in range(shards)]


# ======================================================================
# Worker-side warm contexts
# ======================================================================
#
# Initializers run once per worker process and cache the campaign
# context in a module global; task functions only ship the per-trial
# payload (a trial index, plus the fault spec for single-fault trials).
# The same builders warm-start the scheduler's work-unit runners
# (:mod:`repro.faults.scheduler`), so both engines share a single
# definition of "a worker's campaign context".

_FAULT_CONTEXT = None
_SOAK_CONTEXT = None


def build_fault_context(kernel, config, decode_count: int):
    """Build one worker's warm single-fault campaign context.

    ``decode_count`` ships from the parent so the worker skips the
    fault-free reference run entirely.
    """
    from .campaign import FaultCampaign
    return FaultCampaign(kernel, config, decode_count=decode_count)


def build_soak_context(kernel, config):
    """Build one worker's warm soak campaign context."""
    from .campaign import SoakCampaign
    return SoakCampaign(kernel, config)


def _fault_worker_init(kernel, config, decode_count: int) -> None:
    global _FAULT_CONTEXT
    _FAULT_CONTEXT = build_fault_context(kernel, config, decode_count)


def _fault_worker_trial(index: int, spec: FaultSpec) -> TrialResult:
    return _FAULT_CONTEXT.run_trial(index, spec)


def _soak_worker_init(kernel, config) -> None:
    global _SOAK_CONTEXT
    _SOAK_CONTEXT = build_soak_context(kernel, config)


def _soak_worker_trial(trial: int):
    # In-worker crash isolation: an exception inside the trial becomes a
    # picklable harness_error result instead of poisoning the pool.
    return _SOAK_CONTEXT._isolated_trial(trial)


# ======================================================================
# Parent-side execution
# ======================================================================

def run_fault_trials(campaign, plan: Sequence[FaultSpec],
                     workers: int) -> List[TrialResult]:
    """Run a single-fault campaign's plan across worker processes.

    The plan was generated in the parent from the per-benchmark RNG
    stream; workers receive ``(trial_index, spec)`` pairs and a warm
    context built once per worker (``decode_count`` shipped from the
    parent so workers skip the fault-free reference run). Results come
    back in trial order. A worker exception propagates, matching the
    serial engine's behaviour.
    """
    if not plan:
        return []
    pool = ProcessPoolExecutor(
        max_workers=min(workers, len(plan)),
        mp_context=_mp_context(),
        initializer=_fault_worker_init,
        initargs=(campaign.kernel, campaign.config, campaign.decode_count),
    )
    try:
        futures = [pool.submit(_fault_worker_trial, index, spec)
                   for index, spec in enumerate(plan)]
        results = [future.result() for future in futures]
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return results


def run_pruned_trials(campaign, representatives: Sequence[FaultSpec],
                      workers: int) -> List[TrialResult]:
    """Run a pruned campaign's representative trials across workers.

    Identical engine to :func:`run_fault_trials` — representative specs
    were chosen in the parent by :meth:`FaultCampaign.pruning_plan
    <repro.faults.campaign.FaultCampaign.pruning_plan>`, and a trial is
    a pure function of its spec, so class selection and trial execution
    compose without any new determinism obligations. Exists as a named
    entry point so the pruned mode's worker-count independence is
    separately testable and its call sites are greppable.
    """
    return run_fault_trials(campaign, representatives, workers)


def _soak_pool_round(campaign, trials: Sequence[int], workers: int,
                     on_result: Callable,
                     deaths: Dict[int, int]) -> List[int]:
    """One pool's worth of soak trials; returns the trials to retry.

    A completed trial is reported through ``on_result``; a trial whose
    future raised (pool breakage from a dead worker) either increments
    its death count and joins the returned retry list, or — at
    ``_MAX_WORKER_DEATHS`` — is reported as ``harness_error``.
    """
    from .campaign import SoakTrialResult
    pool = ProcessPoolExecutor(
        max_workers=min(workers, len(trials)),
        mp_context=_mp_context(),
        initializer=_soak_worker_init,
        initargs=(campaign.kernel, campaign.config),
    )
    survivors: List[int] = []
    try:
        futures = {pool.submit(_soak_worker_trial, trial): trial
                   for trial in trials}
        for future in as_completed(futures):
            trial = futures[future]
            try:
                result = future.result()
            except Exception as exc:  # noqa: BLE001 — pool breakage
                deaths[trial] += 1
                if deaths[trial] >= _MAX_WORKER_DEATHS:
                    on_result(SoakTrialResult(
                        trial=trial,
                        outcome="harness_error",
                        error=f"worker process failed "
                              f"({type(exc).__name__}: {exc})",
                    ))
                else:
                    survivors.append(trial)
            else:
                on_result(result)
    except BaseException:
        # Interrupt raised from on_result (or the parent): stop
        # handing out work, abandon running trials, re-raise. The
        # caller's partials hold everything recorded so far.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return survivors


def run_soak_trials(campaign, trials: Sequence[int], workers: int,
                    on_result: Callable) -> None:
    """Run soak trials across worker processes with full crash isolation.

    ``on_result(SoakTrialResult)`` is invoked in completion order as each
    trial finishes (the campaign uses it to persist resumable partials
    and report progress); the caller reassembles by trial index.

    A dead worker process breaks its whole pool without identifying the
    trial that killed it, so blame is established by isolation: trials
    that have never seen a breakage share a pool, while every trial
    pending at a breakage is retried in its own dedicated single-trial
    pool. There a second death is unambiguous — that trial is classified
    ``harness_error`` — and innocent bystanders simply complete. The
    loop terminates because each round either finishes a trial, moves it
    to the isolated path, or classifies it.
    """
    pending = sorted(trials)
    deaths = {trial: 0 for trial in pending}
    while pending:
        fresh = [t for t in pending if deaths[t] == 0]
        suspects = [t for t in pending if deaths[t] > 0]
        survivors: List[int] = []
        if fresh:
            survivors.extend(_soak_pool_round(
                campaign, fresh, workers, on_result, deaths))
        for trial in suspects:
            survivors.extend(_soak_pool_round(
                campaign, [trial], 1, on_result, deaths))
        pending = sorted(survivors)
