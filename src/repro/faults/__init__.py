"""Fault injection: SEU model, decode-signal injector, campaigns."""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    FaultCampaign,
    SoakCampaign,
    SoakCampaignResult,
    SoakConfig,
    SoakTrialResult,
    soak_trial_rng,
)
from .parallel import resolve_workers, shard_round_robin
from .injector import (
    DecodeInjector,
    FaultSpec,
    FaultStrike,
    PoissonInjector,
    fault_plan,
    random_fault,
)
from .pc_faults import (
    PcFaultCampaignResult,
    PcFaultResult,
    PcFaultSpec,
    run_pc_campaign,
    run_pc_trial,
)
from .outcomes import (
    FIGURE8_ORDER,
    Detection,
    Effect,
    Outcome,
    TrialResult,
    classify,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "FaultCampaign",
    "SoakCampaign",
    "SoakCampaignResult",
    "SoakConfig",
    "SoakTrialResult",
    "soak_trial_rng",
    "resolve_workers",
    "shard_round_robin",
    "DecodeInjector",
    "FaultSpec",
    "FaultStrike",
    "PoissonInjector",
    "fault_plan",
    "random_fault",
    "PcFaultCampaignResult",
    "PcFaultResult",
    "PcFaultSpec",
    "run_pc_campaign",
    "run_pc_trial",
    "FIGURE8_ORDER",
    "Detection",
    "Effect",
    "Outcome",
    "TrialResult",
    "classify",
]
