"""PC / next-PC fault study (paper Section 2.5).

The paper analyses — but does not quantify — faults on the program
counter: a disruption *mid-trace* mixes signals from correct and incorrect
instructions into the signature and is caught by the ITR cache; a
disruption at a *natural trace boundary* fetches a different-but-valid
trace whose signature agrees with its own cache entry, which is the ITR
cache's blind spot. The paper proposes the commit-PC (sequential-PC)
check to close it.

This campaign quantifies all of that: single-bit upsets on the fetch PC
at random cycles, classified by which check detects them (ITR signature,
sequential-PC check, watchdog, or nothing) and by their architectural
effect, with the sequential-PC check toggleable so its contribution is
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..arch.functional import FunctionalSimulator
from ..uarch.config import PipelineConfig
from ..uarch.pipeline import build_pipeline
from ..utils.rng import make_rng
from ..utils.stats import Counter
from ..workloads.kernels import Kernel
from .campaign import _LockstepComparator


@dataclass(frozen=True)
class PcFaultSpec:
    """One planned PC upset: flip ``bit`` of the fetch PC at ``cycle``."""

    cycle: int
    bit: int      # 3..25 by default: word-aligned, stays near the text

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")
        if not 0 <= self.bit < 32:
            raise ValueError("bit must be 0..31")


@dataclass(frozen=True)
class PcFaultResult:
    """Outcome of one PC-fault trial."""

    benchmark: str
    spec: PcFaultSpec
    fired: bool
    detected_by: str      # "itr" / "spc" / "wdog" / "none"
    effect: str           # "sdc" / "mask"
    run_reason: str

    @property
    def label(self) -> str:
        return f"{self.detected_by}+{self.effect}"


@dataclass
class PcFaultCampaignResult:
    benchmark: str
    spc_enabled: bool
    trials: List[PcFaultResult] = field(default_factory=list)

    def counts(self) -> Counter:
        """Label counts across all trials (plus not_fired)."""
        counter = Counter()
        for trial in self.trials:
            if trial.fired:
                counter.add(trial.label)
            else:
                counter.add("not_fired")
        return counter

    def detected_fraction(self) -> float:
        """Detection fraction among fired trials."""
        fired = [t for t in self.trials if t.fired]
        if not fired:
            return 0.0
        return sum(t.detected_by != "none" for t in fired) / len(fired)

    def undetected_sdc_fraction(self) -> float:
        """Undetected-SDC fraction among fired trials."""
        fired = [t for t in self.trials if t.fired]
        if not fired:
            return 0.0
        return sum(t.detected_by == "none" and t.effect == "sdc"
                   for t in fired) / len(fired)


class _PcInjector:
    """Fetch-PC hook flipping one bit at one cycle."""

    def __init__(self, spec: PcFaultSpec):
        self.spec = spec
        self.fired = False

    def __call__(self, cycle: int, fetch_pc: int) -> int:
        if cycle == self.spec.cycle and not self.fired:
            self.fired = True
            return fetch_pc ^ (1 << self.spec.bit)
        return fetch_pc


def run_pc_trial(kernel: Kernel, spec: PcFaultSpec,
                 spc_enabled: bool = True,
                 observation_cycles: int = 60_000,
                 pipeline_config: Optional[PipelineConfig] = None
                 ) -> PcFaultResult:
    """Inject one PC fault into a monitor-mode run and classify it."""
    program = kernel.program()
    golden = FunctionalSimulator(program, inputs=kernel.inputs)
    comparator = _LockstepComparator(golden,
                                     max_steps=10 * observation_cycles)
    injector = _PcInjector(spec)
    pipeline = build_pipeline(
        program,
        config=pipeline_config or PipelineConfig(),
        recovery_enabled=False,
        inputs=kernel.inputs,
        enable_spc=spc_enabled,
        commit_listener=comparator,
        fetch_tamper=injector,
    )
    run = pipeline.run(max_cycles=observation_cycles)

    if pipeline.itr.events:
        detected = "itr"
    elif spc_enabled and pipeline.stats.spc_violations > 0:
        detected = "spc"
    elif run.reason == "deadlock":
        detected = "wdog"
    else:
        detected = "none"
    effect = "sdc" if comparator.diverged or run.reason == "deadlock" \
        else "mask"
    return PcFaultResult(
        benchmark=kernel.name,
        spec=spec,
        fired=injector.fired,
        detected_by=detected,
        effect=effect,
        run_reason=run.reason,
    )


def run_pc_campaign(kernel: Kernel, trials: int = 40, seed: int = 25,
                    spc_enabled: bool = True,
                    observation_cycles: int = 60_000,
                    max_bit: int = 16) -> PcFaultCampaignResult:
    """A deterministic PC-fault campaign over one kernel.

    Fault cycles are drawn from the first ~60% of the fault-free run so
    the upset lands while the program is still executing; bits 3..max_bit
    keep the corrupted PC word-aligned and plausibly near the text
    segment (high-bit flips trivially starve fetch and tell us little).
    """
    program = kernel.program()
    reference = build_pipeline(program, inputs=kernel.inputs)
    reference_run = reference.run(max_cycles=observation_cycles)
    horizon = max(2, int(reference_run.cycles * 0.6))

    rng = make_rng(seed, "pc-faults", kernel.name)
    result = PcFaultCampaignResult(benchmark=kernel.name,
                                   spc_enabled=spc_enabled)
    for _ in range(trials):
        spec = PcFaultSpec(cycle=rng.randrange(1, horizon),
                           bit=rng.randrange(3, max_bit + 1))
        result.trials.append(run_pc_trial(
            kernel, spec, spc_enabled=spc_enabled,
            observation_cycles=observation_cycles))
    return result
