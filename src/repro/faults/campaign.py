"""Fault-injection campaigns: golden-vs-faulty lockstep + classification.

Reproduces the paper's Section 4 methodology:

* a golden (fault-free) functional simulator runs in parallel with the
  faulty cycle simulator; every committed instruction is compared, and
  any divergence in committed state is a (potential) SDC;
* the faulty machine runs ITR in **monitor mode** — mismatches are
  recorded with ground-truth taint but recovery is not performed — which
  yields the paper's counterfactual labels ("detected and recovered by
  ITR that *would have otherwise* led to SDC") from a single faulty run;
* the sequential-PC check and the watchdog timer provide the two
  auxiliary detections of the paper's experiment;
* optionally, each recoverable detection is re-verified by running the
  recovery-enabled machine and checking it reconverges with golden.

Scale note: the paper injects 1000 faults per benchmark with a 1M-cycle
observation window over 200M-instruction SPEC runs. This harness defaults
to smaller campaigns over the kernel suite (see EXPERIMENTS.md); all
limits are parameters.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional

from ..arch.functional import CommitEffect, FunctionalSimulator
from ..arch.oracle import golden_final_state
from ..arch.state import ArchState
from ..isa.decode_signals import DecodeSignals
from ..uarch.config import PipelineConfig
from ..uarch.pipeline import build_pipeline
from ..utils.rng import make_rng
from ..utils.stats import Counter
from ..workloads.kernels import Kernel
from .injector import DecodeInjector, FaultSpec, PoissonInjector, fault_plan
from .outcomes import FIGURE8_ORDER, Effect, Outcome, TrialResult, classify


@dataclass
class CampaignConfig:
    """Knobs of one fault-injection campaign.

    ``trial_timeout_s`` is a harness guard, not an experiment knob: a
    pathological decode tamper cannot stall a worker past its wall-clock
    budget — the trial is cut off between simulation chunks and reported
    as ``harness_error`` with a ``timeout`` reason. Wall-clock is
    machine-dependent, so the budget is excluded from
    :meth:`fingerprint` (mirroring :class:`SoakConfig`); at the default
    (generous) budget no healthy trial ever hits it.
    """

    trials: int = 100
    seed: int = 2007                 # DSN 2007
    observation_cycles: int = 60_000  # window (paper: 1M cycles)
    verify_recovery: bool = False    # re-run with recovery on for R labels
    trial_timeout_s: float = 120.0   # per-trial wall-clock budget
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)

    def fingerprint(self) -> Dict[str, object]:
        """Determinism-relevant identity, recorded in JSON exports."""
        return {
            "trials": self.trials,
            "seed": self.seed,
            "observation_cycles": self.observation_cycles,
            "verify_recovery": self.verify_recovery,
        }


#: Cycles simulated between wall-clock deadline checks. Chunking is
#: behaviour-neutral: ``pipeline.run(max_cycles=...)`` takes an absolute
#: cycle bound and reports cumulative instruction counts, so a run split
#: into chunks commits exactly the instructions of a single call.
_TRIAL_CHUNK_CYCLES = 20_000


class _LockstepComparator:
    """Compares faulty commits against the golden effect stream."""

    def __init__(self, golden: FunctionalSimulator, max_steps: int):
        self._golden_effects = golden.effects(max_steps)
        self.diverged = False
        self.divergence_pc: Optional[int] = None

    def __call__(self, effect: CommitEffect,
                 signals: DecodeSignals) -> None:
        if self.diverged:
            return
        expected = next(self._golden_effects, None)
        if expected is None \
                or not expected.same_architectural_effect(effect):
            self.diverged = True
            self.divergence_pc = effect.pc


@dataclass
class CampaignResult:
    """Aggregated results of one benchmark's campaign."""

    benchmark: str
    trials: List[TrialResult] = field(default_factory=list)
    config_fingerprint: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (inverse of :meth:`from_dict`).

        This is the serial/parallel equivalence contract: a campaign run
        with any worker count must serialize byte-identically (via
        ``json.dumps(..., sort_keys=True)``) to the serial run.
        """
        return {
            "benchmark": self.benchmark,
            "config": self.config_fingerprint,
            "trials": [t.to_dict() for t in self.trials],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignResult":
        return cls(
            benchmark=data["benchmark"],
            trials=[TrialResult.from_dict(t) for t in data["trials"]],
            config_fingerprint=data.get("config"),
        )

    def aggregate(self) -> Dict[str, object]:
        """Deterministic summary (counts, detection fraction, Fig 8 row)."""
        return {
            "benchmark": self.benchmark,
            "config": self.config_fingerprint,
            "trials": self.total,
            "outcomes": dict(sorted(self.counts().items())),
            "detected_by_itr": sum(t.detected_itr for t in self.trials),
            "figure8_row": self.figure8_row(),
        }

    @property
    def total(self) -> int:
        return len(self.trials)

    def counts(self) -> Counter:
        """Outcome-label counts across all trials."""
        counter = Counter()
        for trial in self.trials:
            counter.add(trial.outcome.value)
        return counter

    def fraction(self, outcome: Outcome) -> float:
        """Fraction of trials with a given outcome."""
        if not self.trials:
            return 0.0
        return sum(t.outcome is outcome for t in self.trials) / len(self.trials)

    def fraction_interval(self, outcome: Outcome):
        """95% Wilson interval for an outcome fraction (small campaigns
        need error bars; the paper ran 1000 trials, we run far fewer)."""
        from ..utils.stats import wilson_interval
        hits = sum(t.outcome is outcome for t in self.trials)
        return wilson_interval(hits, len(self.trials))

    def detection_interval(self):
        """95% Wilson interval for the ITR-detection fraction."""
        from ..utils.stats import wilson_interval
        hits = sum(t.detected_itr for t in self.trials)
        return wilson_interval(hits, len(self.trials))

    def detected_by_itr_fraction(self) -> float:
        """The paper's headline: fraction of faults ITR detects."""
        if not self.trials:
            return 0.0
        return sum(t.detected_itr for t in self.trials) / len(self.trials)

    def figure8_row(self) -> Dict[str, float]:
        """Percentages per Figure 8 category, in legend order."""
        return {outcome.value: 100.0 * self.fraction(outcome)
                for outcome in FIGURE8_ORDER}


@dataclass
class PrunedCampaignResult:
    """One pruned campaign: representative trials + class bookkeeping.

    ``trials[i]`` is the injection of class ``classes[i]``'s
    representative site; the full-population aggregate is reconstituted
    by weighting each representative outcome by its class weight
    (member slots x member bits). Like :class:`CampaignResult`, the
    serialized form is byte-identical for any worker count.
    """

    benchmark: str
    config_fingerprint: Optional[Dict[str, object]] = None
    plan_fingerprint: Optional[Dict[str, object]] = None
    classes: List[Dict[str, object]] = field(default_factory=list)
    trials: List[TrialResult] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "benchmark": self.benchmark,
            "config": self.config_fingerprint,
            "plan": self.plan_fingerprint,
            "classes": self.classes,
            "trials": [t.to_dict() for t in self.trials],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PrunedCampaignResult":
        return cls(
            benchmark=data["benchmark"],
            config_fingerprint=data.get("config"),
            plan_fingerprint=data.get("plan"),
            classes=list(data.get("classes", [])),
            trials=[TrialResult.from_dict(t) for t in data["trials"]],
        )

    @property
    def injected_trials(self) -> int:
        return len(self.trials)

    @property
    def raw_sites(self) -> int:
        return sum(int(cls["weight"]) for cls in self.classes)

    def weighted_counts(self) -> Counter:
        """Reconstituted outcome counts over the full site population."""
        counter = Counter()
        for cls, trial in zip(self.classes, self.trials):
            counter.add(trial.outcome.value, int(cls["weight"]))
        return counter

    def weighted_detected_fraction(self) -> float:
        """ITR-detection fraction over the full site population."""
        total = self.raw_sites
        if not total:
            return 0.0
        hits = sum(int(cls["weight"])
                   for cls, trial in zip(self.classes, self.trials)
                   if trial.detected_itr)
        return hits / total

    def figure8_row(self) -> Dict[str, float]:
        """Weighted percentages per Figure 8 category, legend order."""
        total = self.raw_sites
        counts = self.weighted_counts()
        return {outcome.value:
                (100.0 * counts[outcome.value] / total if total else 0.0)
                for outcome in FIGURE8_ORDER}

    def prediction_mismatches(self) -> List[int]:
        """Indices of classes whose proved prediction missed (self-check:
        inert classes carry a constructively predicted outcome; any
        disagreement with the injected representative is an analyzer
        bug, not statistical noise)."""
        return [index
                for index, (cls, trial) in enumerate(
                    zip(self.classes, self.trials))
                if cls.get("predicted_outcome") is not None
                and cls["predicted_outcome"] != trial.outcome.value]

    def aggregate(self) -> Dict[str, object]:
        """Deterministic summary mirroring :meth:`CampaignResult
        .aggregate`, reconstituted over the full site population."""
        return {
            "benchmark": self.benchmark,
            "config": self.config_fingerprint,
            "plan": self.plan_fingerprint,
            "injected_trials": self.injected_trials,
            "raw_sites": self.raw_sites,
            "outcomes": dict(sorted(self.weighted_counts().items())),
            "detected_by_itr_fraction": self.weighted_detected_fraction(),
            "prediction_mismatches": self.prediction_mismatches(),
            "figure8_row": self.figure8_row(),
        }


class FaultCampaign:
    """Runs a full campaign for one kernel.

    Construction performs the one-time per-kernel work (assemble, build
    the pristine initial state, run the fault-free reference to size the
    fault-site space); every trial then warm-starts from a copy-on-write
    fork of that state instead of rebuilding it. Parallel workers pass
    ``decode_count`` (measured once in the parent) to skip the reference
    run entirely.
    """

    def __init__(self, kernel: Kernel,
                 config: Optional[CampaignConfig] = None,
                 decode_count: Optional[int] = None):
        self.kernel = kernel
        self.config = config or CampaignConfig()
        self._program = kernel.program()
        # Pristine post-ABI-reset state, forked per trial (warm start).
        self._initial_state = ArchState.from_program(self._program)
        self.golden_instructions: Optional[int] = None
        # Decode slot of every committed instruction, in commit order —
        # captured from the sizing run below; the static profile path
        # projects committed-coordinate roles through it. None in
        # workers (which never build plans).
        self._commit_slots: Optional[List[int]] = None
        if decode_count is not None:
            if decode_count < 1:
                raise ValueError("decode_count must be >= 1")
            self.decode_count = decode_count
            return
        # Fault sites are drawn over the fault-free run's decode count
        # (wrong-path decodes included — hardware faults strike whatever is
        # in the decode stage).
        commit_slots: List[int] = []
        reference = build_pipeline(self._program, config=self.config.pipeline,
                                   inputs=kernel.inputs,
                                   initial_state=self._initial_state
                                   .cow_fork(),
                                   commit_slot_listener=commit_slots.append)
        reference.run(max_cycles=self.config.observation_cycles)
        self.decode_count = max(1, reference.stats.instructions_decoded)
        self.golden_instructions = reference.stats.instructions_committed
        self._commit_slots = commit_slots

    # ------------------------------------------------------------- one trial
    def run_trial(self, trial_index: int, spec: FaultSpec) -> TrialResult:
        """Run and classify one injection (see module docstring)."""
        config = self.config
        golden = FunctionalSimulator(self._program, inputs=self.kernel.inputs,
                                     initial_state=self._initial_state
                                     .cow_fork())
        comparator = _LockstepComparator(
            golden, max_steps=10 * config.observation_cycles)
        injector = DecodeInjector(spec)
        pipeline = build_pipeline(
            self._program,
            config=config.pipeline,
            recovery_enabled=False,       # monitor mode: counterfactual run
            inputs=self.kernel.inputs,
            decode_tamper=injector,
            commit_listener=comparator,
            initial_state=self._initial_state.cow_fork(),
        )
        deadline = time.monotonic() + config.trial_timeout_s
        while True:
            limit = min(config.observation_cycles,
                        pipeline.cycle + _TRIAL_CHUNK_CYCLES)
            run = pipeline.run(max_cycles=limit)
            if run.reason != "max_cycles" \
                    or limit >= config.observation_cycles:
                break
            if time.monotonic() >= deadline:
                # Harness failure, not a fault verdict: report the trial
                # as harness_error instead of stalling the campaign.
                return TrialResult(
                    benchmark=self.kernel.name,
                    trial=trial_index,
                    decode_index=spec.decode_index,
                    bit=spec.bit,
                    field=spec.field_name,
                    outcome=Outcome.HARNESS_ERROR,
                    detected_itr=False,
                    itr_recoverable=False,
                    spc_fired=False,
                    effect=Effect.MASK,
                    faulty_signature_resident=False,
                    run_reason="timeout",
                    instructions_committed=run.instructions,
                    fault_pc=injector.fault_pc,
                    error=(f"timeout: trial exceeded "
                           f"{config.trial_timeout_s:g}s wall-clock "
                           f"budget at cycle {pipeline.cycle}"),
                )

        mismatches = pipeline.itr.events
        detected_itr = bool(mismatches)
        itr_recoverable = mismatches[0].accessing_tainted if mismatches \
            else False
        spc_fired = pipeline.stats.spc_violations > 0
        if run.reason == "deadlock":
            effect = Effect.DEADLOCK
        elif comparator.diverged:
            effect = Effect.SDC
        else:
            effect = Effect.MASK
        resident = pipeline.itr.pending_fault_resident()

        outcome = classify(
            detected_itr=detected_itr,
            itr_recoverable=itr_recoverable,
            spc_fired=spc_fired,
            effect=effect,
            faulty_signature_resident=resident,
        )

        recovery_verified: Optional[bool] = None
        if config.verify_recovery and outcome in (Outcome.ITR_SDC_R,
                                                  Outcome.ITR_WDOG_R):
            recovery_verified = self._verify_recovery(spec)

        return TrialResult(
            benchmark=self.kernel.name,
            trial=trial_index,
            decode_index=spec.decode_index,
            bit=spec.bit,
            field=spec.field_name,
            outcome=outcome,
            detected_itr=detected_itr,
            itr_recoverable=itr_recoverable,
            spc_fired=spc_fired,
            effect=effect,
            faulty_signature_resident=resident,
            run_reason=run.reason,
            instructions_committed=run.instructions,
            divergence_pc=comparator.divergence_pc,
            recovery_verified=recovery_verified,
            fault_pc=injector.fault_pc,
        )

    def _verify_recovery(self, spec: FaultSpec) -> bool:
        """Re-run with recovery enabled: does the machine reconverge?"""
        config = self.config
        golden = FunctionalSimulator(self._program, inputs=self.kernel.inputs,
                                     initial_state=self._initial_state
                                     .cow_fork())
        comparator = _LockstepComparator(
            golden, max_steps=10 * config.observation_cycles)
        pipeline = build_pipeline(
            self._program,
            config=config.pipeline,
            recovery_enabled=True,
            inputs=self.kernel.inputs,
            decode_tamper=DecodeInjector(spec),
            commit_listener=comparator,
            initial_state=self._initial_state.cow_fork(),
        )
        run = pipeline.run(max_cycles=2 * config.observation_cycles)
        return run.reason == "halted" and not comparator.diverged

    # ------------------------------------------------------------- all trials
    def plan(self) -> List[FaultSpec]:
        """The campaign's deterministic fault plan.

        Generated once from a single per-benchmark RNG stream, so the
        trial -> fault-site mapping is fixed before any trial runs —
        independent of worker count, sharding, or completion order.
        """
        return fault_plan(self.config.seed, self.kernel.name,
                          self.config.trials, self.decode_count)

    def run(self, workers: Optional[object] = None) -> CampaignResult:
        """Run the full deterministic fault plan for this kernel.

        ``workers`` selects the execution engine: ``None`` runs trials
        serially in-process; an integer >= 1 (or ``"auto"``) fans trials
        out across that many worker processes via
        :mod:`repro.faults.parallel`, with results reassembled in trial
        order so the outcome is byte-identical to the serial run.
        """
        plan = self.plan()
        result = CampaignResult(benchmark=self.kernel.name,
                                config_fingerprint=self.config.fingerprint())
        from .parallel import resolve_workers
        pool_size = resolve_workers(workers)
        if pool_size is None:
            for index, spec in enumerate(plan):
                result.trials.append(self.run_trial(index, spec))
        else:
            from .parallel import run_fault_trials
            result.trials = run_fault_trials(self, plan, pool_size)
        return result

    def iter_trials(self) -> Iterator[TrialResult]:
        """Lazy trial stream (lets callers report progress)."""
        for index, spec in enumerate(self.plan()):
            yield self.run_trial(index, spec)

    # ----------------------------------------------------------- pruned mode
    def reference_profile(self, profile_source: str = "dynamic"):
        """This campaign's slot-role profile, dynamic or static.

        ``"dynamic"`` costs one extra fault-free reference run (profiled
        this time) in the same pipeline configuration and observation
        window, so the profile's slot numbering is exactly the
        campaign's fault-site coordinate system. ``"static"`` costs *no*
        pipeline run: the committed schedule is reconstructed by
        :mod:`repro.analysis.cache_model` and projected onto decode
        slots through the commit-slot map the sizing run already
        captured.
        """
        if profile_source == "dynamic":
            from ..analysis.fault_sites import collect_reference_profile
            profile = collect_reference_profile(
                self._program,
                inputs=self.kernel.inputs,
                pipeline_config=self.config.pipeline,
                observation_cycles=self.config.observation_cycles,
                initial_state=self._initial_state,
            )
            if profile.decode_count != self.decode_count:
                raise RuntimeError(
                    f"profiled reference decoded {profile.decode_count} "
                    f"slots but the campaign sized {self.decode_count}; "
                    f"pipeline configurations diverged")
            return profile
        if profile_source != "static":
            raise ValueError(
                f"unknown profile_source {profile_source!r} "
                f"(expected 'static' or 'dynamic')")
        if self._commit_slots is None:
            raise RuntimeError(
                "static profiles need the sizing run's commit-slot map; "
                "this campaign was constructed with an explicit "
                "decode_count (worker mode)")
        from ..analysis.cache_model import (
            DEFAULT_MAX_INSTRUCTIONS,
            project_to_decode_profile,
            reconstruct_committed_schedule,
        )
        budget = DEFAULT_MAX_INSTRUCTIONS
        if self.golden_instructions is not None:
            budget = max(budget, self.golden_instructions + 64)
        schedule = reconstruct_committed_schedule(
            self._program, inputs=self.kernel.inputs,
            max_instructions=budget)
        return project_to_decode_profile(
            schedule, self.config.pipeline.itr_cache,
            self.decode_count, self._commit_slots)

    def pruning_plan(self, slot_range=None, refine_absint: bool = True,
                     profile_source: str = "dynamic",
                     population: Optional[str] = None,
                     canonical: Optional[bool] = None):
        """Build this campaign's fault-site equivalence-class plan.

        See :meth:`reference_profile` for the two profile sources.
        Parent-only, like :meth:`plan` — workers receive representative
        specs, never rebuild the plan. ``refine_absint=False`` skips the
        abstract-interpretation masking proofs (the PR 5 syntactic-only
        census), which the validation experiment uses as its baseline.

        Static profiles cover only the committed population with
        canonical roles (the statically reconstructible coordinate
        system), so ``population``/``canonical`` default to
        ``"committed"``/``True`` there and to the full-census
        ``"all"``/``False`` for dynamic profiles; pass them explicitly
        to build a dynamic plan in the static coordinate system for
        byte-identity comparison.
        """
        from ..analysis.pruning import build_pruning_plan
        if population is None:
            population = ("committed" if profile_source == "static"
                          else "all")
        if canonical is None:
            canonical = profile_source == "static"
        if profile_source == "static" and (
                population != "committed" or not canonical):
            raise ValueError(
                "static profiles only support the canonical committed "
                "census (population='committed', canonical=True)")
        profile = self.reference_profile(profile_source)
        return build_pruning_plan(self._program, profile,
                                  benchmark=self.kernel.name,
                                  slot_range=slot_range,
                                  refine_absint=refine_absint,
                                  population=population,
                                  canonical=canonical)

    def run_pruned(self, workers: Optional[object] = None,
                   slot_range=None, plan=None,
                   profile_source: str = "dynamic"
                   ) -> PrunedCampaignResult:
        """Inject one representative per equivalence class.

        Covers the *entire* fault-site population (``decode_count x
        64`` sites — or a ``slot_range`` window of it) at a fraction of
        the trials: the returned result reconstitutes full-population
        aggregates by class weight. Deterministic and byte-stable for
        any ``workers`` value, exactly like :meth:`run`.
        ``profile_source="static"`` derives the plan without the
        profiling run (see :meth:`reference_profile`).
        """
        if plan is None:
            plan = self.pruning_plan(slot_range,
                                     profile_source=profile_source)
        specs = [FaultSpec(decode_index=cls.rep_slot, bit=cls.rep_bit)
                 for cls in plan.classes]
        from .parallel import resolve_workers
        pool_size = resolve_workers(workers)
        if pool_size is None:
            trials = [self.run_trial(index, spec)
                      for index, spec in enumerate(specs)]
        else:
            from .parallel import run_pruned_trials
            trials = run_pruned_trials(self, specs, pool_size)
        return PrunedCampaignResult(
            benchmark=self.kernel.name,
            config_fingerprint=self.config.fingerprint(),
            plan_fingerprint=plan.fingerprint(),
            classes=[cls.to_json() for cls in plan.classes],
            trials=trials,
        )

    # -------------------------------------------------------- scheduler mode
    def run_scheduled(self, scheduler=None, chaos=None):
        """Run the campaign through the leased work-unit scheduler.

        Trades the per-trial result list of :meth:`run` for
        constant-memory streaming aggregates, lease-based retry/hedging
        robustness and optional Wilson-interval early stopping. Returns
        a :class:`~repro.faults.scheduler.ScheduledCampaignResult` whose
        aggregate is byte-identical to folding the serial trials through
        :class:`~repro.faults.merge.FaultAggregate`.
        """
        from .scheduler import run_scheduled_fault
        return run_scheduled_fault(self, scheduler, chaos=chaos)

    def run_pruned_scheduled(self, scheduler=None, slot_range=None,
                             plan=None, chaos=None,
                             profile_source: str = "dynamic"):
        """Scheduler-mode counterpart of :meth:`run_pruned` (one
        representative per equivalence class, class-weighted streaming
        aggregates)."""
        if plan is None:
            plan = self.pruning_plan(slot_range,
                                     profile_source=profile_source)
        from .scheduler import run_scheduled_pruned
        return run_scheduled_pruned(self, plan, scheduler, chaos=chaos)


# ======================================================================
# Multi-fault soak campaigns (recovery subsystem stress testing)
# ======================================================================

#: Cycles simulated between wall-clock deadline checks (see
#: :data:`_TRIAL_CHUNK_CYCLES`; both engines chunk identically).
_SOAK_CHUNK_CYCLES = _TRIAL_CHUNK_CYCLES

#: Trial outcome labels (see :class:`SoakTrialResult.outcome`).
SOAK_OUTCOMES = ("ok", "wrong_output", "aborted", "deadlock", "timeout",
                 "harness_error")


def _partial_checksum(payload: Dict[str, object]) -> str:
    """Trailing checksum over a partial's canonical JSON body.

    Computed over the payload *without* its ``checksum`` key, serialized
    exactly as :meth:`SoakCampaign._save_partial` writes it — so a
    truncated or bit-flipped file can never verify.
    """
    body = json.dumps(payload, indent=2, sort_keys=True)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def soak_trial_rng(seed: int, benchmark: str, trial: int):
    """The soak campaign's trial -> RNG-stream derivation.

    One independent stream per ``(seed, benchmark, trial)`` identity —
    never a function of worker count, shard layout, or completion order.
    This is the function the seed-derivation property test pins down.
    """
    return make_rng(seed, "soak", benchmark, trial)


@dataclass
class SoakConfig:
    """Knobs of one multi-fault soak campaign.

    Unlike :class:`CampaignConfig` (one planned upset per trial, monitor
    mode), a soak trial runs the *recovery-enabled* machine under a
    Poisson stream of upsets and demands exact reconvergence with the
    golden functional simulator at the end — the paper's Section 2.3
    claim ("recovery can be done by rolling back...") exercised under
    sustained fault pressure.
    """

    trials: int = 25
    seed: int = 2007
    fault_rate: float = 1.0 / 3000.0  # expected upsets per decode slot
    max_cycles: int = 400_000         # per-trial cycle budget
    trial_timeout_s: float = 120.0    # per-trial wall-clock budget
    recovery: bool = True             # attach the checkpoint/rollback unit
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)

    def fingerprint(self) -> Dict[str, object]:
        """Determinism-relevant identity (guards ``--resume`` mixups)."""
        return {
            "trials": self.trials,
            "seed": self.seed,
            "fault_rate": self.fault_rate,
            "max_cycles": self.max_cycles,
            "recovery": self.recovery,
        }


@dataclass
class SoakTrialResult:
    """One soak trial. All fields are deterministic for a given seed —
    wall-clock time is deliberately excluded so a resumed campaign
    aggregates byte-identically to an uninterrupted one."""

    trial: int
    outcome: str                     # one of SOAK_OUTCOMES
    strikes: int = 0                 # upsets actually delivered
    detections: int = 0              # ITR signature mismatches recorded
    retries: int = 0
    recoveries: int = 0              # single-mismatch retry successes
    machine_checks: int = 0          # second-mismatch escalations
    rollbacks: int = 0               # escalations converted to rollbacks
    watchdog_rollbacks: int = 0
    checkpoints: int = 0             # coarse-grain captures taken
    instructions: int = 0
    cycles: int = 0
    rollback_distances: List[int] = field(default_factory=list)
    error: Optional[str] = None      # harness_error diagnostic

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SoakTrialResult":
        return cls(**data)


@dataclass
class SoakCampaignResult:
    """Aggregated soak results for one kernel."""

    benchmark: str
    config_fingerprint: Dict[str, object]
    trials: List[SoakTrialResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.trials)

    def counts(self) -> Counter:
        """Trial count per outcome label."""
        counter = Counter()
        for trial in self.trials:
            counter.add(trial.outcome)
        return counter

    def rollback_distances(self) -> List[int]:
        """Every rollback distance (instructions), all trials concatenated."""
        distances: List[int] = []
        for trial in self.trials:
            distances.extend(trial.rollback_distances)
        return distances

    def aborts_avoided(self) -> int:
        """Escalations that rolled back instead of ending the program."""
        return sum(t.rollbacks for t in self.trials)

    def aggregate(self) -> Dict[str, object]:
        """Deterministic summary (the resume-equivalence contract: same
        seed => byte-identical JSON, interrupted or not)."""
        return {
            "benchmark": self.benchmark,
            "config": self.config_fingerprint,
            "trials": self.total,
            "outcomes": dict(sorted(self.counts().items())),
            "strikes": sum(t.strikes for t in self.trials),
            "detections": sum(t.detections for t in self.trials),
            "retries": sum(t.retries for t in self.trials),
            "recoveries": sum(t.recoveries for t in self.trials),
            "machine_checks": sum(t.machine_checks for t in self.trials),
            "rollbacks": sum(t.rollbacks for t in self.trials),
            "watchdog_rollbacks": sum(t.watchdog_rollbacks
                                      for t in self.trials),
            "checkpoints": sum(t.checkpoints for t in self.trials),
            "rollback_distances": self.rollback_distances(),
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "benchmark": self.benchmark,
            "config": self.config_fingerprint,
            "trials": [t.to_dict() for t in self.trials],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SoakCampaignResult":
        return cls(
            benchmark=data["benchmark"],
            config_fingerprint=data["config"],
            trials=[SoakTrialResult.from_dict(t) for t in data["trials"]],
        )


class SoakCampaign:
    """Long-run multi-fault campaign against the recovery-enabled machine.

    Resilience contract (the harness must outlive the machinery it tests):

    * every trial is wrapped in crash isolation — an unexpected exception
      becomes a ``harness_error`` outcome and the campaign continues;
    * trials carry both a cycle budget and a wall-clock budget, checked
      between simulation chunks, so one pathological trial cannot hang
      the campaign;
    * partial results checkpoint to JSON after every trial, and
      ``resume=True`` skips already-completed trials — a killed campaign
      resumed with the same seed aggregates byte-identically to an
      uninterrupted one (trial RNGs are independent per-trial streams).
    """

    def __init__(self, kernel: Kernel, config: Optional[SoakConfig] = None):
        self.kernel = kernel
        self.config = config or SoakConfig()
        self._program = kernel.program()
        # Pristine post-ABI-reset state, forked per trial (warm start).
        self._initial_state = ArchState.from_program(self._program)
        # The golden final state comes from the per-process oracle cache,
        # so a parallel worker running many campaigns of the same kernel
        # (or many trials of one campaign) pays for the golden run once.
        golden = golden_final_state(kernel,
                                    max_steps=10 * self.config.max_cycles)
        self._golden_output = golden.output
        self._golden_regs = golden.regs
        self._golden_digest = golden.memory_digest

    # ------------------------------------------------------------- one trial
    def run_trial(self, trial: int) -> SoakTrialResult:
        """Run one Poisson-stream trial to completion or a budget limit."""
        config = self.config
        rng = soak_trial_rng(config.seed, self.kernel.name, trial)
        injector = PoissonInjector(rng, config.fault_rate)
        pipeline = build_pipeline(
            self._program,
            config=config.pipeline,
            inputs=self.kernel.inputs,
            decode_tamper=injector,
            checkpointing=config.recovery,
            initial_state=self._initial_state.cow_fork(),
        )
        deadline = time.monotonic() + config.trial_timeout_s
        while True:
            limit = min(config.max_cycles,
                        pipeline.cycle + _SOAK_CHUNK_CYCLES)
            run = pipeline.run(max_cycles=limit)
            if run.reason != "max_cycles" or limit >= config.max_cycles:
                break
            if time.monotonic() >= deadline:
                break

        if run.reason == "halted":
            converged = (
                pipeline.output == self._golden_output
                and pipeline.arch_state.regs.snapshot() == self._golden_regs
                and pipeline.arch_state.memory.page_digest()
                == self._golden_digest
            )
            outcome = "ok" if converged else "wrong_output"
        elif run.reason == "machine_check":
            outcome = "aborted"
        elif run.reason == "deadlock":
            outcome = "deadlock"
        else:
            outcome = "timeout"

        unit = pipeline.checkpoints
        return SoakTrialResult(
            trial=trial,
            outcome=outcome,
            strikes=len(injector.strikes),
            detections=pipeline.itr.stats.mismatches,
            retries=pipeline.itr.stats.retries,
            recoveries=pipeline.itr.stats.recoveries,
            machine_checks=pipeline.itr.stats.machine_checks,
            rollbacks=pipeline.itr.stats.rollbacks,
            watchdog_rollbacks=pipeline.stats.watchdog_rollbacks,
            checkpoints=unit.captures if unit is not None else 0,
            instructions=pipeline.stats.instructions_committed,
            cycles=pipeline.cycle,
            rollback_distances=(unit.rollback_distances()
                                if unit is not None else []),
        )

    def _isolated_trial(self, trial: int) -> SoakTrialResult:
        """Crash isolation: a trial that blows up must not kill the
        campaign (and must be *visible* in the results, never silently
        swallowed)."""
        try:
            return self.run_trial(trial)
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            return SoakTrialResult(
                trial=trial,
                outcome="harness_error",
                error=f"{type(exc).__name__}: {exc}",
            )

    # ------------------------------------------------------------ all trials
    def run(self, save_path: Optional[str] = None, resume: bool = False,
            progress=None,
            workers: Optional[object] = None) -> SoakCampaignResult:
        """Run every trial, optionally checkpointing/resuming via JSON.

        ``workers`` selects the execution engine: ``None`` runs serially
        in-process; an integer >= 1 (or ``"auto"``) fans the pending
        trials across worker processes via :mod:`repro.faults.parallel`.
        Trial RNG streams are derived purely from the trial identity
        (:func:`soak_trial_rng`), so any worker count — and any mix of
        interrupted/resumed execution — aggregates byte-identically to an
        uninterrupted serial run. Partial results are persisted as each
        trial completes, in either mode.
        """
        config = self.config
        done: Dict[int, SoakTrialResult] = {}
        if resume and save_path is not None and os.path.exists(save_path):
            done = self._load_partial(save_path)
        pending = [t for t in range(config.trials) if t not in done]

        def record(result: SoakTrialResult) -> None:
            done[result.trial] = result
            # Persist before notifying observers: a crash (or interrupt)
            # raised from the progress callback must not lose the trial.
            if save_path is not None:
                self._save_partial(save_path, done)
            if progress is not None:
                progress(result)

        from .parallel import resolve_workers
        pool_size = resolve_workers(workers)
        if pool_size is None:
            for trial in pending:
                record(self._isolated_trial(trial))
        elif pending:
            from .parallel import run_soak_trials
            run_soak_trials(self, pending, pool_size, record)
        return SoakCampaignResult(
            benchmark=self.kernel.name,
            config_fingerprint=config.fingerprint(),
            trials=[done[i] for i in range(config.trials)],
        )

    # -------------------------------------------------------- scheduler mode
    def run_scheduled(self, scheduler=None, chaos=None):
        """Run the soak campaign through the leased work-unit scheduler
        (constant-memory streaming aggregates; see
        :meth:`FaultCampaign.run_scheduled`)."""
        from .scheduler import run_scheduled_soak
        return run_scheduled_soak(self, scheduler, chaos=chaos)

    # ------------------------------------------------------------ persistence
    def _save_partial(self, path: str,
                      done: Dict[int, SoakTrialResult]) -> None:
        payload = {
            "benchmark": self.kernel.name,
            "config": self.config.fingerprint(),
            "completed": {str(k): v.to_dict()
                          for k, v in sorted(done.items())},
        }
        payload["checksum"] = _partial_checksum(payload)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)  # atomic: a killed save never corrupts

    def _load_partial(self, path: str) -> Dict[int, SoakTrialResult]:
        """Load a resumable partial, quarantining corruption.

        The atomic-rename save keeps the happy path safe, but a partial
        can still arrive truncated or corrupt (copied mid-write, bad
        disk, hand-edited). Such a file is *quarantined* — renamed to
        ``<path>.corrupt`` — and an empty completion map is returned so
        the affected trials simply re-run; only a well-formed partial
        from a *different campaign* still raises, because silently
        discarding a healthy file would mask a user mixup.
        """
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("not a JSON object")
            stored = payload.pop("checksum", None)
            if stored is None:
                raise ValueError("missing trailing checksum")
            if stored != _partial_checksum(payload):
                raise ValueError("trailing checksum mismatch")
        except ValueError as exc:  # JSONDecodeError is a ValueError
            quarantine = path + ".corrupt"
            os.replace(path, quarantine)
            warnings.warn(
                f"resume file {path} is corrupt ({exc}); quarantined to "
                f"{quarantine}; affected trials will re-run",
                RuntimeWarning, stacklevel=2)
            return {}
        if payload.get("benchmark") != self.kernel.name \
                or payload.get("config") != self.config.fingerprint():
            raise ValueError(
                f"resume file {path} was produced by a different campaign "
                f"(benchmark/seed/rate/trials mismatch)")
        return {int(k): SoakTrialResult.from_dict(v)
                for k, v in payload.get("completed", {}).items()}
