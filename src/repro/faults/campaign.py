"""Fault-injection campaigns: golden-vs-faulty lockstep + classification.

Reproduces the paper's Section 4 methodology:

* a golden (fault-free) functional simulator runs in parallel with the
  faulty cycle simulator; every committed instruction is compared, and
  any divergence in committed state is a (potential) SDC;
* the faulty machine runs ITR in **monitor mode** — mismatches are
  recorded with ground-truth taint but recovery is not performed — which
  yields the paper's counterfactual labels ("detected and recovered by
  ITR that *would have otherwise* led to SDC") from a single faulty run;
* the sequential-PC check and the watchdog timer provide the two
  auxiliary detections of the paper's experiment;
* optionally, each recoverable detection is re-verified by running the
  recovery-enabled machine and checking it reconverges with golden.

Scale note: the paper injects 1000 faults per benchmark with a 1M-cycle
observation window over 200M-instruction SPEC runs. This harness defaults
to smaller campaigns over the kernel suite (see EXPERIMENTS.md); all
limits are parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..arch.functional import CommitEffect, FunctionalSimulator
from ..isa.decode_signals import DecodeSignals
from ..uarch.config import PipelineConfig
from ..uarch.pipeline import build_pipeline
from ..utils.stats import Counter
from ..workloads.kernels import Kernel
from .injector import DecodeInjector, FaultSpec, fault_plan
from .outcomes import FIGURE8_ORDER, Effect, Outcome, TrialResult, classify


@dataclass
class CampaignConfig:
    """Knobs of one fault-injection campaign."""

    trials: int = 100
    seed: int = 2007                 # DSN 2007
    observation_cycles: int = 60_000  # window (paper: 1M cycles)
    verify_recovery: bool = False    # re-run with recovery on for R labels
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)


class _LockstepComparator:
    """Compares faulty commits against the golden effect stream."""

    def __init__(self, golden: FunctionalSimulator, max_steps: int):
        self._golden_effects = golden.effects(max_steps)
        self.diverged = False
        self.divergence_pc: Optional[int] = None

    def __call__(self, effect: CommitEffect,
                 signals: DecodeSignals) -> None:
        if self.diverged:
            return
        expected = next(self._golden_effects, None)
        if expected is None \
                or not expected.same_architectural_effect(effect):
            self.diverged = True
            self.divergence_pc = effect.pc


@dataclass
class CampaignResult:
    """Aggregated results of one benchmark's campaign."""

    benchmark: str
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.trials)

    def counts(self) -> Counter:
        """Outcome-label counts across all trials."""
        counter = Counter()
        for trial in self.trials:
            counter.add(trial.outcome.value)
        return counter

    def fraction(self, outcome: Outcome) -> float:
        """Fraction of trials with a given outcome."""
        if not self.trials:
            return 0.0
        return sum(t.outcome is outcome for t in self.trials) / len(self.trials)

    def fraction_interval(self, outcome: Outcome):
        """95% Wilson interval for an outcome fraction (small campaigns
        need error bars; the paper ran 1000 trials, we run far fewer)."""
        from ..utils.stats import wilson_interval
        hits = sum(t.outcome is outcome for t in self.trials)
        return wilson_interval(hits, len(self.trials))

    def detection_interval(self):
        """95% Wilson interval for the ITR-detection fraction."""
        from ..utils.stats import wilson_interval
        hits = sum(t.detected_itr for t in self.trials)
        return wilson_interval(hits, len(self.trials))

    def detected_by_itr_fraction(self) -> float:
        """The paper's headline: fraction of faults ITR detects."""
        if not self.trials:
            return 0.0
        return sum(t.detected_itr for t in self.trials) / len(self.trials)

    def figure8_row(self) -> Dict[str, float]:
        """Percentages per Figure 8 category, in legend order."""
        return {outcome.value: 100.0 * self.fraction(outcome)
                for outcome in FIGURE8_ORDER}


class FaultCampaign:
    """Runs a full campaign for one kernel."""

    def __init__(self, kernel: Kernel,
                 config: Optional[CampaignConfig] = None):
        self.kernel = kernel
        self.config = config or CampaignConfig()
        self._program = kernel.program()
        # Fault sites are drawn over the fault-free run's decode count
        # (wrong-path decodes included — hardware faults strike whatever is
        # in the decode stage).
        reference = build_pipeline(self._program, config=self.config.pipeline,
                                   inputs=kernel.inputs)
        reference.run(max_cycles=self.config.observation_cycles)
        self.decode_count = max(1, reference.stats.instructions_decoded)
        self.golden_instructions = reference.stats.instructions_committed

    # ------------------------------------------------------------- one trial
    def run_trial(self, trial_index: int, spec: FaultSpec) -> TrialResult:
        """Run and classify one injection (see module docstring)."""
        config = self.config
        golden = FunctionalSimulator(self._program, inputs=self.kernel.inputs)
        comparator = _LockstepComparator(
            golden, max_steps=10 * config.observation_cycles)
        injector = DecodeInjector(spec)
        pipeline = build_pipeline(
            self._program,
            config=config.pipeline,
            recovery_enabled=False,       # monitor mode: counterfactual run
            inputs=self.kernel.inputs,
            decode_tamper=injector,
            commit_listener=comparator,
        )
        run = pipeline.run(max_cycles=config.observation_cycles)

        mismatches = pipeline.itr.events
        detected_itr = bool(mismatches)
        itr_recoverable = mismatches[0].accessing_tainted if mismatches \
            else False
        spc_fired = pipeline.stats.spc_violations > 0
        if run.reason == "deadlock":
            effect = Effect.DEADLOCK
        elif comparator.diverged:
            effect = Effect.SDC
        else:
            effect = Effect.MASK
        resident = pipeline.itr.pending_fault_resident()

        outcome = classify(
            detected_itr=detected_itr,
            itr_recoverable=itr_recoverable,
            spc_fired=spc_fired,
            effect=effect,
            faulty_signature_resident=resident,
        )

        recovery_verified: Optional[bool] = None
        if config.verify_recovery and outcome in (Outcome.ITR_SDC_R,
                                                  Outcome.ITR_WDOG_R):
            recovery_verified = self._verify_recovery(spec)

        return TrialResult(
            benchmark=self.kernel.name,
            trial=trial_index,
            decode_index=spec.decode_index,
            bit=spec.bit,
            field=spec.field_name,
            outcome=outcome,
            detected_itr=detected_itr,
            itr_recoverable=itr_recoverable,
            spc_fired=spc_fired,
            effect=effect,
            faulty_signature_resident=resident,
            run_reason=run.reason,
            instructions_committed=run.instructions,
            divergence_pc=comparator.divergence_pc,
            recovery_verified=recovery_verified,
            fault_pc=injector.fault_pc,
        )

    def _verify_recovery(self, spec: FaultSpec) -> bool:
        """Re-run with recovery enabled: does the machine reconverge?"""
        config = self.config
        golden = FunctionalSimulator(self._program, inputs=self.kernel.inputs)
        comparator = _LockstepComparator(
            golden, max_steps=10 * config.observation_cycles)
        pipeline = build_pipeline(
            self._program,
            config=config.pipeline,
            recovery_enabled=True,
            inputs=self.kernel.inputs,
            decode_tamper=DecodeInjector(spec),
            commit_listener=comparator,
        )
        run = pipeline.run(max_cycles=2 * config.observation_cycles)
        return run.reason == "halted" and not comparator.diverged

    # ------------------------------------------------------------- all trials
    def run(self) -> CampaignResult:
        """Run the full deterministic fault plan for this kernel."""
        plan = fault_plan(self.config.seed, self.kernel.name,
                          self.config.trials, self.decode_count)
        result = CampaignResult(benchmark=self.kernel.name)
        for index, spec in enumerate(plan):
            result.trials.append(self.run_trial(index, spec))
        return result

    def iter_trials(self) -> Iterator[TrialResult]:
        """Lazy trial stream (lets callers report progress)."""
        plan = fault_plan(self.config.seed, self.kernel.name,
                          self.config.trials, self.decode_count)
        for index, spec in enumerate(plan):
            yield self.run_trial(index, spec)
