"""Fault-tolerant leased work-unit campaign scheduler.

Grows the fork-pool engine (:mod:`repro.faults.parallel`) into a
fleet-shaped scheduler: the trial population is sharded into fixed
:class:`WorkUnit` blocks, each dispatched under a *lease* (deadline +
heartbeat) over a pluggable :class:`ExecutorBackend`. The scheduler
then survives the failure modes a long campaign actually meets:

* **expired leases** (dead or stalled workers) are retried with
  deterministic exponential backoff and jitter, up to a budget;
* **stragglers** past a latency percentile are *hedged* — dispatched a
  second time, first completion wins. Because a trial is a pure
  function of its identity, every completion of a unit carries the
  *same* aggregate, so the winner's identity cannot perturb results;
* **permanently failing units** degrade gracefully into
  ``harness_error`` trials with full accounting in the campaign-level
  :class:`SchedulerHealth` report, instead of aborting the run;
* workers stream constant-memory partial aggregates
  (:mod:`repro.faults.merge`) instead of per-trial result lists, and
  the scheduler merges them **in unit order at a frontier**, so the
  running aggregate is always the fold of an exact trial prefix — which
  makes Wilson-interval early stopping deterministic and keeps the
  final aggregate byte-identical to a serial fold.

Determinism contract: for a fixed campaign, the final aggregate's
``json.dumps(..., sort_keys=True)`` bytes equal the serial per-trial
fold — for any backend, worker count, retry/hedge schedule, or chaos
injection that does not exhaust a unit's retry budget. The chaos suite
(``tests/faults/test_scheduler_chaos.py``) pins this down under worker
kills, stalls, duplicate completions, and corrupt/truncated payloads.

Three backends share one event vocabulary (``result`` / ``corrupt`` /
``error`` / ``death`` / ``heartbeat``):

``socket``
    The full reference implementation: one forked process per slot,
    speaking length-prefixed pickled frames over a ``socketpair``, with
    sha256-checksummed result payloads (detects corruption/truncation
    in flight), in-band heartbeats, and replacement spawning when a
    worker dies or its lease is released.
``fork``
    The existing :class:`~concurrent.futures.ProcessPoolExecutor` fork
    pool behind the lease/retry/hedge layer; a broken pool maps to
    ``death`` events and a rebuilt pool.
``inline``
    Synchronous in-process execution with *simulated* chaos (a ``kill``
    becomes a ``death`` event, a ``stall`` simply never completes), for
    fast deterministic tests of the scheduling policy itself.
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
import os
import pickle
import queue
import select
import signal
import socket
import struct
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..utils.rng import stream_uniform
from ..utils.stats import percentile, wilson_halfwidth
from .injector import FaultSpec
from .merge import FaultAggregate, SoakAggregate
from .parallel import _mp_context, build_fault_context, build_soak_context

Aggregate = Union[FaultAggregate, SoakAggregate]
HeartbeatFn = Optional[Callable[[], None]]


class SchedulerStalled(RuntimeError):
    """The campaign exceeded its absolute no-progress guard."""


# ======================================================================
# Work units
# ======================================================================

@dataclass(frozen=True)
class WorkUnit:
    """A contiguous block of trial indices leased as one piece of work."""

    unit_id: int
    indices: Tuple[int, ...]

    @property
    def trials(self) -> int:
        return len(self.indices)


def shard_units(total_trials: int, unit_trials: int) -> List[WorkUnit]:
    """Contiguous fixed-size decomposition of a trial population.

    Contiguity matters: the scheduler merges completed units in
    ``unit_id`` order, so the running aggregate is always the fold of
    the trial prefix ``[0, merged_trials)`` — the property that makes
    early stopping deterministic.
    """
    if unit_trials < 1:
        raise ValueError(f"unit_trials must be >= 1, got {unit_trials}")
    units: List[WorkUnit] = []
    for start in range(0, total_trials, unit_trials):
        stop = min(start + unit_trials, total_trials)
        units.append(WorkUnit(unit_id=len(units),
                              indices=tuple(range(start, stop))))
    return units


# ======================================================================
# Chaos injection
# ======================================================================

@dataclass(frozen=True)
class ChaosAction:
    """One scheduled fault of the *harness* (not of the simulated CPU).

    ``kind`` is one of:

    ``kill``       worker SIGKILLs itself before running the unit
    ``stall``      worker SIGSTOPs itself (a hard stall past the lease)
    ``sleep``      worker sleeps ``seconds`` before running (silent
                   stall: the lease may expire, the late result still
                   arrives and must not double-count)
    ``error``      worker reports a harness error instead of running
    ``corrupt``    result payload is bit-flipped in flight (checksum
                   mismatch at the parent)
    ``truncate``   result frame is cut short and the worker dies
    ``duplicate``  result frame is delivered twice
    """

    kind: str
    seconds: float = 0.0


_CHAOS_KINDS = ("kill", "stall", "sleep", "error", "corrupt", "truncate",
                "duplicate")


@dataclass
class ChaosPlan:
    """Chaos schedule keyed by ``(unit_id, attempt_no)``.

    Keying by attempt ordinal makes schedules precise: chaos on attempt
    0 with a retry budget of 2 *must* still produce byte-identical
    aggregates; chaos on every attempt of a unit *must* degrade it.
    """

    actions: Dict[Tuple[int, int], ChaosAction] = field(
        default_factory=dict)

    def add(self, unit_id: int, attempt_no: int, kind: str,
            seconds: float = 0.0) -> None:
        """Schedule one fault against a specific (unit, attempt)."""
        if kind not in _CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {kind!r}")
        self.actions[(unit_id, attempt_no)] = ChaosAction(kind, seconds)

    def action(self, unit_id: int, attempt_no: int) -> Optional[ChaosAction]:
        """The fault planned for this (unit, attempt), if any."""
        return self.actions.get((unit_id, attempt_no))

    def __len__(self) -> int:
        return len(self.actions)


# ======================================================================
# Configuration
# ======================================================================

@dataclass
class EarlyStopConfig:
    """Wilson-interval statistical early stopping.

    The campaign stops dispatching once the Wilson score interval of
    the tracked outcome proportion (ITR-detection fraction for fault
    campaigns, ``ok`` fraction for soak) has half-width <= ``margin``.
    Because the scheduler merges at a unit-order frontier, the decision
    is a pure function of the trial prefix — independent of worker
    count, completion order, or chaos.
    """

    margin: float = 0.02
    z: float = 1.96                 # 95% confidence
    min_trials: int = 50            # never stop on a sliver of evidence

    def fingerprint(self) -> Dict[str, object]:
        """Result-relevant identity (recorded in JSON exports)."""
        return {"margin": self.margin, "z": self.z,
                "min_trials": self.min_trials}


@dataclass
class SchedulerConfig:
    """Knobs of the leased work-unit scheduler.

    Only ``unit_trials`` and ``early_stop`` can change *which* trials
    contribute to the final aggregate (via the early-stop prefix);
    everything else — backend, workers, lease/retry/hedge policy —
    affects wall-clock behaviour only, never results.
    """

    workers: int = 2
    backend: str = "fork"            # fork | socket | inline
    unit_trials: int = 8             # trials per work unit
    lease_timeout_s: float = 30.0    # heartbeat-refreshed lease deadline
    heartbeat_interval_s: float = 0.5
    max_attempts: int = 3            # failed attempts before degradation
    backoff_base_s: float = 0.05     # retry backoff: base * factor**k
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    hedge_quantile: float = 0.95     # hedge past this completion quantile
    hedge_factor: float = 2.0        # ... scaled by this factor
    hedge_min_completions: int = 10  # observations before hedging starts
    hedge_min_latency_s: float = 1.0  # never hedge faster than this
    max_hedges: int = 8              # speculation budget per campaign
    early_stop: Optional[EarlyStopConfig] = None
    poll_interval_s: float = 0.05    # backend poll granularity
    campaign_timeout_s: float = 600.0  # absolute no-hang guard
    seed: int = 2007                 # jitter stream seed

    def fingerprint(self) -> Dict[str, object]:
        """Result-relevant identity (recorded in JSON exports)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "unit_trials": self.unit_trials,
            "early_stop": (self.early_stop.fingerprint()
                           if self.early_stop is not None else None),
        }


# ======================================================================
# Health report
# ======================================================================

@dataclass
class SchedulerHealth:
    """Campaign-level accounting of every retry, hedge and degradation.

    Ledger identity (asserted by the chaos suite): every dispatch
    reaches exactly one terminal state, so

        ``dispatches == accepted + superseded + failed + cancelled``.

    ``expired_leases`` / ``corrupt_payloads`` / ``worker_deaths`` /
    ``worker_errors`` classify *incidents* (an expired attempt is a
    "zombie": not yet terminal, because its late result may still
    arrive and win); ``late_results`` / ``duplicate_results`` count
    deliveries the dedupe layer had to absorb.
    """

    units: int = 0
    trials_planned: int = 0
    dispatches: int = 0
    retries: int = 0
    hedges: int = 0
    accepted: int = 0
    superseded: int = 0
    failed: int = 0
    cancelled: int = 0
    expired_leases: int = 0
    corrupt_payloads: int = 0
    worker_deaths: int = 0
    worker_errors: int = 0
    late_results: int = 0
    duplicate_results: int = 0
    degraded_units: int = 0
    degraded_trials: int = 0
    merged_units: int = 0
    merged_trials: int = 0
    early_stopped: bool = False

    def ledger_balanced(self) -> bool:
        """Every dispatch accounted for exactly once."""
        return self.dispatches == (self.accepted + self.superseded
                                   + self.failed + self.cancelled)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable health ledger."""
        return {
            "units": self.units,
            "trials_planned": self.trials_planned,
            "dispatches": self.dispatches,
            "retries": self.retries,
            "hedges": self.hedges,
            "accepted": self.accepted,
            "superseded": self.superseded,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "expired_leases": self.expired_leases,
            "corrupt_payloads": self.corrupt_payloads,
            "worker_deaths": self.worker_deaths,
            "worker_errors": self.worker_errors,
            "late_results": self.late_results,
            "duplicate_results": self.duplicate_results,
            "degraded_units": self.degraded_units,
            "degraded_trials": self.degraded_trials,
            "merged_units": self.merged_units,
            "merged_trials": self.merged_trials,
            "early_stopped": self.early_stopped,
        }


# ======================================================================
# Unit runners (worker-side)
# ======================================================================

class FaultUnitRunner:
    """Runs blocks of single-fault (or pruned) trials into an aggregate.

    Picklable (ships to pool workers) and fork-inheritable; the warm
    campaign context is built lazily on first use, once per process,
    via the same builder the fork-pool engine uses.
    """

    def __init__(self, benchmark: str, kernel: Any, config: Any,
                 decode_count: int, specs: Sequence[FaultSpec],
                 weights: Optional[Sequence[int]] = None):
        self.kind = "pruned" if weights is not None else "fault"
        self.benchmark = benchmark
        self._kernel = kernel
        self._config = config
        self._decode_count = decode_count
        self._specs = list(specs)
        self._weights = list(weights) if weights is not None else None
        self._context: Optional[Any] = None

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_context"] = None      # contexts never cross processes
        return state

    def _campaign(self) -> Any:
        if self._context is None:
            self._context = build_fault_context(
                self._kernel, self._config, self._decode_count)
        return self._context

    def empty(self) -> FaultAggregate:
        """A zero-trial aggregate (the merge identity)."""
        return FaultAggregate(benchmark=self.benchmark)

    def run_unit(self, indices: Sequence[int],
                 heartbeat: HeartbeatFn = None) -> FaultAggregate:
        """Run the unit's trials and fold them into one aggregate."""
        campaign = self._campaign()
        aggregate = self.empty()
        for index in indices:
            trial = campaign.run_trial(index, self._specs[index])
            weight = 1 if self._weights is None else self._weights[index]
            aggregate.record(trial, weight)
            if heartbeat is not None:
                heartbeat()
        return aggregate

    def degraded(self, indices: Sequence[int]) -> FaultAggregate:
        """The unit's graceful-degradation aggregate (all harness_error,
        class-weighted in pruned mode to keep population totals exact)."""
        aggregate = self.empty()
        if self._weights is None:
            aggregate.record_degraded(len(indices))
        else:
            aggregate.record_degraded(
                sum(self._weights[index] for index in indices))
        return aggregate


class SoakUnitRunner:
    """Runs blocks of soak trials (with in-worker crash isolation)."""

    kind = "soak"

    def __init__(self, benchmark: str, kernel: Any, config: Any):
        self.benchmark = benchmark
        self._kernel = kernel
        self._config = config
        self._context: Optional[Any] = None

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_context"] = None
        return state

    def _campaign(self) -> Any:
        if self._context is None:
            self._context = build_soak_context(self._kernel, self._config)
        return self._context

    def empty(self) -> SoakAggregate:
        """A zero-trial aggregate (the merge identity)."""
        return SoakAggregate(benchmark=self.benchmark)

    def run_unit(self, indices: Sequence[int],
                 heartbeat: HeartbeatFn = None) -> SoakAggregate:
        """Run the unit's trials and fold them into one aggregate."""
        campaign = self._campaign()
        aggregate = self.empty()
        for trial in indices:
            aggregate.record(campaign._isolated_trial(trial))
            if heartbeat is not None:
                heartbeat()
        return aggregate

    def degraded(self, indices: Sequence[int]) -> SoakAggregate:
        """The unit's graceful-degradation (all-harness_error) fold."""
        aggregate = self.empty()
        aggregate.record_degraded(len(indices))
        return aggregate


UnitRunner = Union[FaultUnitRunner, SoakUnitRunner]


# ======================================================================
# Backend event vocabulary
# ======================================================================

@dataclass(frozen=True)
class BackendEvent:
    """One observation from an executor backend.

    ``kind`` is ``result`` (payload = the unit's aggregate), ``corrupt``
    (payload failed its checksum), ``error`` (worker-reported harness
    error; payload = message), ``death`` (the worker running
    ``attempt_id`` died), or ``heartbeat`` (lease refresh).
    """

    kind: str
    attempt_id: int
    payload: Any = None


class ExecutorBackend:
    """Minimal lease-oblivious execution surface the scheduler drives.

    Backends only run attempts and report events; leases, retries,
    hedging and dedupe all live in :class:`CampaignScheduler`, so every
    backend gets the same robustness policy for free.
    """

    def start(self) -> None:
        """Bring up worker capacity."""
        raise NotImplementedError

    def free_slots(self) -> int:
        """How many attempts can be dispatched right now."""
        raise NotImplementedError

    def dispatch(self, attempt_id: int, unit: WorkUnit,
                 attempt_no: int) -> None:
        """Hand one attempt of one unit to a free worker slot."""
        raise NotImplementedError

    def release(self, attempt_id: int) -> None:
        """The scheduler expired this attempt's lease: restore capacity.

        Best-effort — the attempt's late result may still be delivered
        (and is deduped upstream).
        """
        raise NotImplementedError

    def poll(self, timeout: float) -> List[BackendEvent]:
        """Drain completion/heartbeat/death events, waiting <= timeout."""
        raise NotImplementedError

    def stop(self) -> None:
        """Tear down all workers (must succeed even mid-chaos)."""
        raise NotImplementedError


# ======================================================================
# Inline backend (synchronous; simulated chaos)
# ======================================================================

class InlineBackend(ExecutorBackend):
    """Runs units synchronously in-process.

    Chaos is *simulated* at the event layer (``kill`` -> ``death``
    event, ``stall`` -> no completion so the lease expires, ``corrupt``
    / ``truncate`` -> ``corrupt`` event, ``duplicate`` -> two results),
    which exercises every scheduler policy path without real processes
    — the fast deterministic substrate for policy tests.
    """

    def __init__(self, runner: UnitRunner,
                 chaos: Optional[ChaosPlan] = None):
        self._runner = runner
        self._chaos = chaos
        self._events: Deque[BackendEvent] = deque()

    def start(self) -> None:
        """Nothing to bring up: work runs in the calling process."""
        pass

    def free_slots(self) -> int:
        """One synchronous slot."""
        return 1

    def dispatch(self, attempt_id: int, unit: WorkUnit,
                 attempt_no: int) -> None:
        """Run the attempt synchronously, simulating planned chaos."""
        action = (self._chaos.action(unit.unit_id, attempt_no)
                  if self._chaos is not None else None)
        if action is not None:
            if action.kind == "kill":
                self._events.append(BackendEvent("death", attempt_id))
                return
            if action.kind == "stall":
                return                # never completes; lease expires
            if action.kind == "error":
                self._events.append(BackendEvent(
                    "error", attempt_id, "chaos: injected worker error"))
                return
            if action.kind == "sleep":
                time.sleep(action.seconds)
        try:
            payload = self._runner.run_unit(unit.indices)
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            self._events.append(BackendEvent(
                "error", attempt_id, f"{type(exc).__name__}: {exc}"))
            return
        if action is not None and action.kind in ("corrupt", "truncate"):
            self._events.append(BackendEvent("corrupt", attempt_id))
            return
        self._events.append(BackendEvent("result", attempt_id, payload))
        if action is not None and action.kind == "duplicate":
            self._events.append(BackendEvent("result", attempt_id, payload))

    def release(self, attempt_id: int) -> None:
        pass

    def poll(self, timeout: float) -> List[BackendEvent]:
        """Drain events queued by the last dispatch."""
        if self._events:
            events = list(self._events)
            self._events.clear()
            return events
        time.sleep(min(timeout, 0.01))
        return []

    def stop(self) -> None:
        """Nothing to tear down."""
        pass


# ======================================================================
# Fork-pool backend (ProcessPoolExecutor behind the lease layer)
# ======================================================================

_POOL_RUNNER: Any = None
_POOL_CHAOS: Optional[ChaosPlan] = None


def _pool_backend_init(runner: UnitRunner,
                       chaos: Optional[ChaosPlan]) -> None:
    global _POOL_RUNNER, _POOL_CHAOS
    _POOL_RUNNER = runner
    _POOL_CHAOS = chaos


def _pool_run_unit(unit_id: int, attempt_no: int,
                   indices: Tuple[int, ...]) -> Any:
    action = (_POOL_CHAOS.action(unit_id, attempt_no)
              if _POOL_CHAOS is not None else None)
    if action is not None:
        if action.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action.kind == "stall":
            os.kill(os.getpid(), signal.SIGSTOP)
        elif action.kind == "sleep":
            time.sleep(action.seconds)
        elif action.kind == "error":
            raise RuntimeError("chaos: injected worker error")
    return _POOL_RUNNER.run_unit(indices)


class ForkPoolBackend(ExecutorBackend):
    """The PR 4 fork pool driven through the scheduler's event loop.

    ``release`` is bookkeeping-only (a pool worker cannot be preempted);
    oversubscription after a lease expiry simply queues behind healthy
    workers. A broken pool (dead worker) surfaces every in-flight
    attempt as a ``death`` event and the pool is rebuilt. Frame-level
    chaos kinds (corrupt/truncate/duplicate) do not exist at this layer
    and run normally.
    """

    def __init__(self, runner: UnitRunner, workers: int,
                 chaos: Optional[ChaosPlan] = None):
        self._runner = runner
        self._target = max(1, workers)
        self._chaos = chaos
        self._pool: Optional[ProcessPoolExecutor] = None
        self._queue: "queue.Queue[Tuple[int, Any]]" = queue.Queue()
        self._futures: Dict[int, Any] = {}
        self._released: Set[int] = set()
        self._stopping = False

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self._target,
            mp_context=_mp_context(),
            initializer=_pool_backend_init,
            initargs=(self._runner, self._chaos),
        )

    def start(self) -> None:
        """Build the process pool."""
        self._pool = self._make_pool()

    def free_slots(self) -> int:
        """Pool capacity minus attempts still holding a slot."""
        active = sum(1 for attempt_id in self._futures
                     if attempt_id not in self._released)
        return self._target - active

    def _rebuild(self) -> None:
        if self._stopping or self._pool is None:
            return
        self._kill_pool_processes()
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._make_pool()

    def _kill_pool_processes(self) -> None:
        # A SIGSTOPped worker never exits on its own and would hang the
        # interpreter's exit join; SIGKILL (delivered even to stopped
        # processes) is the only safe teardown.
        processes = getattr(self._pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # noqa: BLE001 — already dead is fine
                pass

    def dispatch(self, attempt_id: int, unit: WorkUnit,
                 attempt_no: int) -> None:
        """Submit the attempt to the pool (rebuilding it if broken)."""
        assert self._pool is not None
        try:
            future = self._pool.submit(
                _pool_run_unit, unit.unit_id, attempt_no, unit.indices)
        except BrokenProcessPool:
            self._rebuild()
            assert self._pool is not None
            future = self._pool.submit(
                _pool_run_unit, unit.unit_id, attempt_no, unit.indices)
        self._futures[attempt_id] = future
        future.add_done_callback(
            lambda done, attempt=attempt_id:
            self._queue.put((attempt, done)))

    def release(self, attempt_id: int) -> None:
        self._released.add(attempt_id)

    def poll(self, timeout: float) -> List[BackendEvent]:
        """Translate finished futures into backend events."""
        items: List[Tuple[int, Any]] = []
        try:
            items.append(self._queue.get(timeout=timeout))
        except queue.Empty:
            return []
        while True:
            try:
                items.append(self._queue.get_nowait())
            except queue.Empty:
                break
        events: List[BackendEvent] = []
        rebuild = False
        for attempt_id, future in items:
            self._futures.pop(attempt_id, None)
            self._released.discard(attempt_id)
            if future.cancelled():
                continue
            exc = future.exception()
            if exc is None:
                events.append(BackendEvent(
                    "result", attempt_id, future.result()))
            elif isinstance(exc, BrokenProcessPool):
                events.append(BackendEvent("death", attempt_id))
                rebuild = True
            else:
                events.append(BackendEvent(
                    "error", attempt_id,
                    f"{type(exc).__name__}: {exc}"))
        if rebuild:
            self._rebuild()
        return events

    def stop(self) -> None:
        """SIGKILL pool processes (stalled ones never exit) and shut down."""
        self._stopping = True
        if self._pool is not None:
            self._kill_pool_processes()
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


# ======================================================================
# Socket worker backend (reference implementation)
# ======================================================================

_FRAME_HEADER = struct.Struct("!I")


def _encode_frame(message: object) -> bytes:
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME_HEADER.pack(len(body)) + body


def _send_frame(sock: socket.socket, message: object) -> None:
    sock.sendall(_encode_frame(message))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = b""
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            return None
        chunks += chunk
    return chunks


def _recv_frame(sock: socket.socket) -> Optional[Any]:
    header = _recv_exact(sock, _FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    body = _recv_exact(sock, length)
    if body is None:
        return None
    return pickle.loads(body)


def _socket_worker_main(sock: socket.socket, runner: UnitRunner,
                        chaos: Optional[ChaosPlan],
                        heartbeat_interval_s: float) -> None:
    """Socket worker loop: run units, stream heartbeats and results.

    Runs in a forked child. Result payloads carry a sha256 digest so
    the parent detects in-flight corruption; chaos actions are applied
    *here*, worker-side, exactly where real faults would strike.
    """
    while True:
        try:
            message = _recv_frame(sock)
        except OSError:
            return
        if message is None or message[0] == "exit":
            return
        _, attempt_id, unit_id, attempt_no, indices = message
        action = (chaos.action(unit_id, attempt_no)
                  if chaos is not None else None)
        if action is not None:
            if action.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif action.kind == "stall":
                os.kill(os.getpid(), signal.SIGSTOP)
            elif action.kind == "sleep":
                time.sleep(action.seconds)
            elif action.kind == "error":
                _send_frame(sock, ("error", attempt_id,
                                   "chaos: injected worker error"))
                continue

        last_beat = [time.monotonic()]

        def beat() -> None:
            now = time.monotonic()
            if now - last_beat[0] >= heartbeat_interval_s:
                last_beat[0] = now
                try:
                    _send_frame(sock, ("heartbeat", attempt_id))
                except OSError:
                    pass

        try:
            aggregate = runner.run_unit(indices, heartbeat=beat)
        except Exception as exc:  # noqa: BLE001 — worker never dies on
            # a trial exception; it reports and lives on
            _send_frame(sock, ("error", attempt_id,
                               f"{type(exc).__name__}: {exc}"))
            continue
        blob = pickle.dumps(aggregate, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()
        if action is not None and action.kind == "corrupt":
            blob = bytes([blob[0] ^ 0xFF]) + blob[1:]  # digest now stale
        if action is not None and action.kind == "truncate":
            raw = _encode_frame(("result", attempt_id, blob, digest))
            sock.sendall(raw[:max(1, len(raw) // 2)])
            os._exit(1)
        _send_frame(sock, ("result", attempt_id, blob, digest))
        if action is not None and action.kind == "duplicate":
            _send_frame(sock, ("result", attempt_id, blob, digest))


class _SocketWorker:
    """Parent-side bookkeeping for one socket worker process."""

    __slots__ = ("proc", "sock", "buffer", "attempt_id", "retired")

    def __init__(self, proc: Any, sock: socket.socket):
        self.proc = proc
        self.sock = sock
        self.buffer = b""
        self.attempt_id: Optional[int] = None
        self.retired = False


class SocketWorkerBackend(ExecutorBackend):
    """Forked workers over ``socketpair`` framed-message channels.

    The full-featured reference backend: checksummed result payloads,
    in-band heartbeats, EOF-as-death detection, and replacement
    spawning both on death and on lease release (a released worker is
    *retired* — kept alive so its late result can still be delivered
    and deduped, but never dispatched to again).
    """

    def __init__(self, runner: UnitRunner, workers: int,
                 chaos: Optional[ChaosPlan] = None,
                 heartbeat_interval_s: float = 0.5):
        self._runner = runner
        self._target = max(1, workers)
        self._chaos = chaos
        self._interval = heartbeat_interval_s
        self._workers: List[_SocketWorker] = []
        self._stopping = False

    def start(self) -> None:
        """Fork one socket-connected worker process per slot."""
        context = _mp_context()
        if context.get_start_method() != "fork":
            raise RuntimeError(
                "the socket backend requires the fork start method; "
                "use backend='fork' on this platform")
        for _ in range(self._target):
            self._spawn()

    def _spawn(self) -> None:
        context = _mp_context()
        parent, child = socket.socketpair()
        process = context.Process(
            target=_socket_worker_main,
            args=(child, self._runner, self._chaos, self._interval),
            daemon=True,
        )
        process.start()
        child.close()
        parent.setblocking(False)
        self._workers.append(_SocketWorker(process, parent))

    def free_slots(self) -> int:
        """Workers that are alive, not retired, and idle."""
        return sum(1 for worker in self._workers
                   if not worker.retired and worker.attempt_id is None)

    def dispatch(self, attempt_id: int, unit: WorkUnit,
                 attempt_no: int) -> None:
        """Send a run frame to the first idle worker."""
        for worker in self._workers:
            if not worker.retired and worker.attempt_id is None:
                break
        else:
            raise RuntimeError("dispatch with no free socket worker")
        worker.attempt_id = attempt_id
        worker.sock.setblocking(True)
        try:
            _send_frame(worker.sock, ("run", attempt_id, unit.unit_id,
                                      attempt_no, unit.indices))
        except OSError:
            pass                       # death surfaces via EOF in poll
        finally:
            worker.sock.setblocking(False)

    def release(self, attempt_id: int) -> None:
        for worker in self._workers:
            if worker.attempt_id == attempt_id and not worker.retired:
                worker.retired = True
                if not self._stopping:
                    self._spawn()      # restore capacity
                return

    def poll(self, timeout: float) -> List[BackendEvent]:
        """select() over worker sockets; EOF means a worker died."""
        live = [worker for worker in self._workers
                if worker.sock is not None]
        if not live:
            time.sleep(min(timeout, 0.01))
            return []
        by_sock = {worker.sock: worker for worker in live}
        try:
            readable, _, _ = select.select(list(by_sock), [], [], timeout)
        except OSError:
            return []
        events: List[BackendEvent] = []
        for sock in readable:
            worker = by_sock[sock]
            try:
                chunk = sock.recv(1 << 16)
            except BlockingIOError:
                continue
            except OSError:
                chunk = b""
            if not chunk:
                events.extend(self._on_eof(worker))
                continue
            worker.buffer += chunk
            events.extend(self._drain_frames(worker))
        return events

    def _drain_frames(self, worker: _SocketWorker) -> List[BackendEvent]:
        events: List[BackendEvent] = []
        while True:
            if len(worker.buffer) < _FRAME_HEADER.size:
                return events
            (length,) = _FRAME_HEADER.unpack(
                worker.buffer[:_FRAME_HEADER.size])
            end = _FRAME_HEADER.size + length
            if len(worker.buffer) < end:
                return events          # partial frame: wait (or EOF)
            body = worker.buffer[_FRAME_HEADER.size:end]
            worker.buffer = worker.buffer[end:]
            try:
                message = pickle.loads(body)
            except Exception:  # noqa: BLE001 — garbled stream
                events.extend(self._on_eof(worker, kill=True))
                return events
            events.extend(self._on_frame(worker, message))

    def _on_frame(self, worker: _SocketWorker,
                  message: Any) -> List[BackendEvent]:
        kind = message[0]
        if kind == "heartbeat":
            return [BackendEvent("heartbeat", message[1])]
        # Only a frame for the worker's *current* attempt frees its slot:
        # a duplicated result frame for an earlier attempt must not mark
        # a busy (or stalled) worker as idle.
        if kind == "error":
            if worker.attempt_id == message[1]:
                worker.attempt_id = None
            return [BackendEvent("error", message[1], message[2])]
        if kind == "result":
            _, attempt_id, blob, digest = message
            if worker.attempt_id == attempt_id:
                worker.attempt_id = None
            if hashlib.sha256(blob).hexdigest() != digest:
                return [BackendEvent("corrupt", attempt_id)]
            try:
                payload = pickle.loads(blob)
            except Exception:  # noqa: BLE001 — corrupt payload body
                return [BackendEvent("corrupt", attempt_id)]
            return [BackendEvent("result", attempt_id, payload)]
        return []

    def _on_eof(self, worker: _SocketWorker,
                kill: bool = False) -> List[BackendEvent]:
        if kill:
            try:
                worker.proc.kill()
            except Exception:  # noqa: BLE001
                pass
        try:
            worker.sock.close()
        except OSError:
            pass
        retired = worker.retired
        attempt_id = worker.attempt_id
        worker.attempt_id = None
        if worker in self._workers:
            self._workers.remove(worker)
        if not retired and not self._stopping:
            self._spawn()              # restore capacity
        if attempt_id is None:
            return []
        return [BackendEvent("death", attempt_id)]

    def stop(self) -> None:
        """SIGKILL every worker (lands even on SIGSTOPped ones)."""
        self._stopping = True
        for worker in self._workers:
            try:
                worker.proc.kill()     # SIGKILL lands on stopped procs
            except Exception:  # noqa: BLE001
                pass
        for worker in self._workers:
            try:
                worker.proc.join(timeout=5)
            except Exception:  # noqa: BLE001
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
        self._workers = []


def make_backend(config: SchedulerConfig, runner: UnitRunner,
                 chaos: Optional[ChaosPlan] = None) -> ExecutorBackend:
    """Instantiate the configured executor backend."""
    if config.backend == "inline":
        return InlineBackend(runner, chaos)
    if config.backend == "fork":
        return ForkPoolBackend(runner, config.workers, chaos)
    if config.backend == "socket":
        return SocketWorkerBackend(runner, config.workers, chaos,
                                   config.heartbeat_interval_s)
    raise ValueError(f"unknown scheduler backend {config.backend!r}")


# ======================================================================
# The scheduler
# ======================================================================

class _Attempt:
    """One dispatch of one work unit (lease state machine node)."""

    __slots__ = ("attempt_id", "unit_id", "started", "deadline", "hedge",
                 "expired", "delivered", "terminal")

    def __init__(self, attempt_id: int, unit_id: int, started: float,
                 deadline: float, hedge: bool):
        self.attempt_id = attempt_id
        self.unit_id = unit_id
        self.started = started
        self.deadline = deadline
        self.hedge = hedge
        self.expired = False           # lease blew its deadline (zombie)
        self.delivered = False         # a result frame was consumed
        self.terminal: Optional[str] = None


class _UnitState:
    """Scheduler-side state of one work unit."""

    __slots__ = ("status", "attempts_made", "failures", "active",
                 "result", "retry_pending")

    def __init__(self) -> None:
        self.status = "pending"        # pending | inflight | done
        self.attempts_made = 0         # dispatch ordinal (chaos key)
        self.failures = 0              # failed/expired attempts so far
        self.active: Set[int] = set()  # non-terminal attempt ids
        self.result: Optional[Aggregate] = None
        self.retry_pending = False


@dataclass
class ScheduledCampaignResult:
    """Outcome of one scheduler-mode campaign: a single constant-size
    aggregate plus the health ledger (never a per-trial list)."""

    benchmark: str
    kind: str                          # fault | pruned | soak
    config_fingerprint: Dict[str, object]
    scheduler_fingerprint: Dict[str, object]
    aggregate: Aggregate
    health: SchedulerHealth
    trials_planned: int

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON form; ``aggregate`` serializes byte-identically
        to the serial fold of the merged trial prefix."""
        return {
            "benchmark": self.benchmark,
            "kind": self.kind,
            "config": self.config_fingerprint,
            "scheduler": self.scheduler_fingerprint,
            "trials_planned": self.trials_planned,
            "aggregate": self.aggregate.to_dict(),
            "health": self.health.to_dict(),
        }


class CampaignScheduler:
    """Drives leased work units over a backend to a merged aggregate.

    Lease lifecycle (see ``docs/architecture.md`` for the diagram):
    PENDING -> LEASED (deadline, heartbeat-refreshed) -> one of
    COMPLETED (result accepted), EXPIRED (deadline passed: capacity
    released, retry scheduled with exponential backoff + deterministic
    jitter; the expired attempt lingers as a *zombie* whose late result
    is still accepted if the unit is not done), or FAILED (death /
    harness error / corrupt payload). A unit whose failure count
    reaches ``max_attempts`` with no live attempt DEGRADES into
    ``harness_error`` trials. Completed units merge at a unit-order
    frontier, making the running aggregate an exact trial prefix.
    """

    def __init__(self, runner: UnitRunner, units: Sequence[WorkUnit],
                 config: SchedulerConfig,
                 campaign_fingerprint: Dict[str, object],
                 chaos: Optional[ChaosPlan] = None):
        self._runner = runner
        self._units = list(units)
        self._config = config
        self._chaos = chaos
        self._campaign_fingerprint = campaign_fingerprint
        self._health = SchedulerHealth(
            units=len(self._units),
            trials_planned=sum(unit.trials for unit in self._units),
        )
        self._states = [_UnitState() for _ in self._units]
        self._attempts: Dict[int, _Attempt] = {}
        self._next_attempt_id = 0
        self._ready: Deque[int] = deque(range(len(self._units)))
        self._retry_heap: List[Tuple[float, int]] = []
        self._latencies: List[float] = []
        self._frontier = 0
        self._merged = self._runner.empty()
        self._early_stopped = False

    # -------------------------------------------------------------- driving
    def run(self) -> ScheduledCampaignResult:
        """Drive every unit to completion (or degradation) and return
        the merged aggregate plus the campaign's health ledger."""
        backend = make_backend(self._config, self._runner, self._chaos)
        backend.start()
        try:
            self._loop(backend)
        finally:
            backend.stop()
        self._cancel_remaining()
        self._health.early_stopped = self._early_stopped
        return ScheduledCampaignResult(
            benchmark=self._runner.benchmark,
            kind=self._runner.kind,
            config_fingerprint=self._campaign_fingerprint,
            scheduler_fingerprint=self._config.fingerprint(),
            aggregate=self._merged,
            health=self._health,
            trials_planned=self._health.trials_planned,
        )

    def _loop(self, backend: ExecutorBackend) -> None:
        start = time.monotonic()
        while self._frontier < len(self._units) \
                and not self._early_stopped:
            now = time.monotonic()
            if now - start > self._config.campaign_timeout_s:
                raise SchedulerStalled(
                    f"campaign made no full progress within "
                    f"{self._config.campaign_timeout_s:g}s "
                    f"(frontier {self._frontier}/{len(self._units)})")
            self._pump_retries(now)
            self._expire_leases(backend, now)
            self._dispatch_ready(backend)
            self._maybe_hedge(backend)
            for event in backend.poll(self._config.poll_interval_s):
                self._handle_event(event)
                if self._early_stopped:
                    break

    # ------------------------------------------------------------- dispatch
    def _pump_retries(self, now: float) -> None:
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, unit_id = heapq.heappop(self._retry_heap)
            state = self._states[unit_id]
            state.retry_pending = False
            if state.status != "done":
                self._ready.append(unit_id)

    def _dispatch_ready(self, backend: ExecutorBackend) -> None:
        while self._ready and backend.free_slots() > 0:
            unit_id = self._ready.popleft()
            if self._states[unit_id].status == "done":
                continue
            self._dispatch(backend, unit_id, hedge=False)

    def _dispatch(self, backend: ExecutorBackend, unit_id: int,
                  hedge: bool) -> None:
        state = self._states[unit_id]
        attempt_no = state.attempts_made
        state.attempts_made += 1
        attempt_id = self._next_attempt_id
        self._next_attempt_id += 1
        now = time.monotonic()
        attempt = _Attempt(attempt_id, unit_id, now,
                           now + self._config.lease_timeout_s, hedge)
        self._attempts[attempt_id] = attempt
        state.active.add(attempt_id)
        state.status = "inflight"
        self._health.dispatches += 1
        if hedge:
            self._health.hedges += 1
        elif attempt_no > 0:
            self._health.retries += 1
        backend.dispatch(attempt_id, self._units[unit_id], attempt_no)

    # ---------------------------------------------------------------- leases
    def _expire_leases(self, backend: ExecutorBackend, now: float) -> None:
        for attempt in list(self._attempts.values()):
            if attempt.terminal is not None or attempt.expired:
                continue
            if now < attempt.deadline:
                continue
            attempt.expired = True
            self._health.expired_leases += 1
            self._states[attempt.unit_id].failures += 1
            backend.release(attempt.attempt_id)
            self._after_attempt_failure(attempt.unit_id)

    def _backoff_delay(self, unit_id: int, failures: int) -> float:
        exponent = max(0, failures - 1)
        base = self._config.backoff_base_s \
            * (self._config.backoff_factor ** exponent)
        base = min(base, self._config.backoff_max_s)
        jitter = stream_uniform(self._config.seed, "backoff",
                                self._runner.benchmark, unit_id, failures)
        return base * (0.5 + jitter)   # deterministic U[0.5x, 1.5x)

    def _after_attempt_failure(self, unit_id: int) -> None:
        state = self._states[unit_id]
        if state.status == "done":
            return
        for attempt_id in state.active:
            if not self._attempts[attempt_id].expired:
                return                 # a live sibling is still running
        if state.failures >= self._config.max_attempts:
            self._degrade(unit_id)
            return
        if state.retry_pending:
            return
        delay = self._backoff_delay(unit_id, state.failures)
        heapq.heappush(self._retry_heap,
                       (time.monotonic() + delay, unit_id))
        state.retry_pending = True
        state.status = "pending"

    # --------------------------------------------------------------- hedging
    def _maybe_hedge(self, backend: ExecutorBackend) -> None:
        config = self._config
        if self._health.hedges >= config.max_hedges:
            return
        if len(self._latencies) < config.hedge_min_completions:
            return
        if self._ready or backend.free_slots() <= 0:
            return                     # real work beats speculation
        threshold = max(
            config.hedge_min_latency_s,
            config.hedge_factor
            * percentile(self._latencies, config.hedge_quantile))
        now = time.monotonic()
        for unit_id, state in enumerate(self._states):
            if state.status != "inflight":
                continue
            live = [self._attempts[attempt_id].started
                    for attempt_id in state.active
                    if not self._attempts[attempt_id].expired]
            if not live or len(live) >= 2:
                continue               # nothing running, or already hedged
            if now - min(live) >= threshold:
                self._dispatch(backend, unit_id, hedge=True)
                return                 # at most one hedge per loop turn
        return

    # ---------------------------------------------------------------- events
    def _handle_event(self, event: BackendEvent) -> None:
        attempt = self._attempts.get(event.attempt_id)
        if attempt is None:
            return
        if event.kind == "heartbeat":
            if attempt.terminal is None:
                attempt.deadline = (time.monotonic()
                                    + self._config.lease_timeout_s)
            return
        if event.kind == "result":
            self._on_result(attempt, event.payload)
            return
        if event.kind == "corrupt":
            self._health.corrupt_payloads += 1
        elif event.kind == "error":
            self._health.worker_errors += 1
        elif event.kind == "death":
            self._health.worker_deaths += 1
        else:
            return
        if attempt.terminal is None:
            if not attempt.expired:
                self._states[attempt.unit_id].failures += 1
            self._finish_attempt(attempt, "failed")
            self._after_attempt_failure(attempt.unit_id)

    def _on_result(self, attempt: _Attempt, payload: Aggregate) -> None:
        if attempt.delivered:
            self._health.duplicate_results += 1
            return
        attempt.delivered = True
        if attempt.expired:
            self._health.late_results += 1
        state = self._states[attempt.unit_id]
        if state.status == "done":
            self._finish_attempt(attempt, "superseded")
            return
        self._finish_attempt(attempt, "accepted")
        self._latencies_insert(time.monotonic() - attempt.started)
        self._complete_unit(attempt.unit_id, payload)

    def _latencies_insert(self, value: float) -> None:
        bisect.insort(self._latencies, value)

    def _finish_attempt(self, attempt: _Attempt, outcome: str) -> None:
        if attempt.terminal is not None:
            return
        attempt.terminal = outcome
        if outcome == "accepted":
            self._health.accepted += 1
        elif outcome == "superseded":
            self._health.superseded += 1
        elif outcome == "failed":
            self._health.failed += 1
        else:
            self._health.cancelled += 1
        self._states[attempt.unit_id].active.discard(attempt.attempt_id)

    # --------------------------------------------------------------- merging
    def _complete_unit(self, unit_id: int, payload: Aggregate) -> None:
        state = self._states[unit_id]
        state.status = "done"
        state.result = payload
        self._advance_frontier()

    def _degrade(self, unit_id: int) -> None:
        state = self._states[unit_id]
        state.status = "done"
        state.result = self._runner.degraded(self._units[unit_id].indices)
        self._health.degraded_units += 1
        self._health.degraded_trials += self._units[unit_id].trials
        self._advance_frontier()

    def _advance_frontier(self) -> None:
        early = self._config.early_stop
        while self._frontier < len(self._units):
            state = self._states[self._frontier]
            if state.status != "done" or state.result is None:
                break
            self._merged.merge(state.result)
            state.result = None        # constant memory: drop after merge
            self._health.merged_units += 1
            self._health.merged_trials += \
                self._units[self._frontier].trials
            self._frontier += 1
            if early is not None and not self._early_stopped:
                hits, total = self._merged.stop_statistic()
                if total >= early.min_trials \
                        and wilson_halfwidth(hits, total, early.z) \
                        <= early.margin:
                    self._early_stopped = True
                    break

    def _cancel_remaining(self) -> None:
        for attempt in self._attempts.values():
            if attempt.terminal is None:
                self._finish_attempt(attempt, "cancelled")
        self._ready.clear()
        self._retry_heap = []


# ======================================================================
# Entry points
# ======================================================================

def run_scheduled_fault(campaign: Any,
                        scheduler: Optional[SchedulerConfig] = None,
                        chaos: Optional[ChaosPlan] = None
                        ) -> ScheduledCampaignResult:
    """Run a :class:`~repro.faults.campaign.FaultCampaign` through the
    scheduler (constant-memory streaming aggregates)."""
    config = scheduler if scheduler is not None else SchedulerConfig()
    plan = campaign.plan()
    runner = FaultUnitRunner(
        benchmark=campaign.kernel.name,
        kernel=campaign.kernel,
        config=campaign.config,
        decode_count=campaign.decode_count,
        specs=plan,
    )
    units = shard_units(len(plan), config.unit_trials)
    return CampaignScheduler(
        runner, units, config,
        campaign_fingerprint=dict(campaign.config.fingerprint()),
        chaos=chaos,
    ).run()


def run_scheduled_pruned(campaign: Any, plan: Any,
                         scheduler: Optional[SchedulerConfig] = None,
                         chaos: Optional[ChaosPlan] = None
                         ) -> ScheduledCampaignResult:
    """Scheduler-mode pruned campaign: one representative injection per
    equivalence class, class-weighted streaming aggregates."""
    config = scheduler if scheduler is not None else SchedulerConfig()
    specs = [FaultSpec(decode_index=cls.rep_slot, bit=cls.rep_bit)
             for cls in plan.classes]
    weights = [int(cls.weight) for cls in plan.classes]
    runner = FaultUnitRunner(
        benchmark=campaign.kernel.name,
        kernel=campaign.kernel,
        config=campaign.config,
        decode_count=campaign.decode_count,
        specs=specs,
        weights=weights,
    )
    units = shard_units(len(specs), config.unit_trials)
    fingerprint = dict(campaign.config.fingerprint())
    fingerprint["plan"] = dict(plan.fingerprint())
    return CampaignScheduler(
        runner, units, config,
        campaign_fingerprint=fingerprint,
        chaos=chaos,
    ).run()


def run_scheduled_soak(campaign: Any,
                       scheduler: Optional[SchedulerConfig] = None,
                       chaos: Optional[ChaosPlan] = None
                       ) -> ScheduledCampaignResult:
    """Run a :class:`~repro.faults.campaign.SoakCampaign` through the
    scheduler (constant-memory streaming aggregates)."""
    config = scheduler if scheduler is not None else SchedulerConfig()
    runner = SoakUnitRunner(
        benchmark=campaign.kernel.name,
        kernel=campaign.kernel,
        config=campaign.config,
    )
    units = shard_units(campaign.config.trials, config.unit_trials)
    return CampaignScheduler(
        runner, units, config,
        campaign_fingerprint=dict(campaign.config.fingerprint()),
        chaos=chaos,
    ).run()
