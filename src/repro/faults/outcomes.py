"""Fault-outcome taxonomy (paper Section 4, Figure 8).

An injected fault is classified along two axes — how it was (or was not)
detected, and what it would have done to architectural state — yielding
the paper's categories:

=================  ====================================================
label              meaning
=================  ====================================================
ITR+Mask           detected by an ITR signature mismatch; architecturally
                   masked (e.g. a flipped ``lat`` or an irrelevant field)
ITR+SDC+R          detected by ITR *in the accessing instance* — flush
                   and restart recovers what would otherwise be silent
                   data corruption
ITR+SDC+D          detected by ITR but only via the stored (previous)
                   instance's signature: state already corrupt, detect
                   only (machine check / program abort)
ITR+wdog+R         detected and recoverable by ITR; without ITR the fault
                   would have deadlocked the machine
spc+SDC            missed by ITR, caught by the sequential-PC check
spc+Mask           caught by the sequential-PC check, architecturally
                   masked
MayITR+SDC         undetected in the observation window, but the faulty
MayITR+Mask        signature is still resident in the ITR cache — a
                   future instance may still detect it
Undet+wdog         undetected by ITR; the watchdog caught a deadlock
Undet+SDC          undetected, silent data corruption
Undet+Mask         undetected, architecturally masked
=================  ====================================================

One extra label sits outside the paper's taxonomy: ``harness_error``
marks a trial the *harness* failed to run to a verdict — the worker
exceeded its wall-clock budget or crashed — mirroring the soak
campaign's label of the same name. It never appears in Figure 8 rows
(:data:`FIGURE8_ORDER` excludes it) and :func:`classify` never returns
it; only the campaign engines' budget/degradation paths produce it.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass
from typing import Dict, Optional


class Detection(enum.Enum):
    """How the fault was detected (if at all)."""

    ITR = "ITR"
    SPC = "spc"
    WATCHDOG = "wdog"
    NONE = "none"


class Effect(enum.Enum):
    """The fault's architectural consequence absent recovery."""

    SDC = "SDC"          # committed state diverged from golden
    DEADLOCK = "wdog"    # the machine stopped making progress
    MASK = "Mask"        # no architecturally visible difference


class Outcome(enum.Enum):
    """The paper's Figure 8 categories."""

    ITR_MASK = "ITR+Mask"
    ITR_SDC_R = "ITR+SDC+R"
    ITR_SDC_D = "ITR+SDC+D"
    ITR_WDOG_R = "ITR+wdog+R"
    SPC_SDC = "spc+SDC"
    SPC_MASK = "spc+Mask"
    MAYITR_SDC = "MayITR+SDC"
    MAYITR_MASK = "MayITR+Mask"
    UNDET_WDOG = "Undet+wdog"
    UNDET_SDC = "Undet+SDC"
    UNDET_MASK = "Undet+Mask"
    #: Harness failure, not a fault verdict: the trial blew its
    #: wall-clock budget or its worker died past the retry budget.
    HARNESS_ERROR = "harness_error"


#: Plot/report order matching the paper's Figure 8 legend.
FIGURE8_ORDER = (
    Outcome.ITR_MASK,
    Outcome.ITR_SDC_D,
    Outcome.ITR_SDC_R,
    Outcome.ITR_WDOG_R,
    Outcome.MAYITR_MASK,
    Outcome.MAYITR_SDC,
    Outcome.SPC_SDC,
    Outcome.SPC_MASK,
    Outcome.UNDET_MASK,
    Outcome.UNDET_WDOG,
    Outcome.UNDET_SDC,
)


def classify(detected_itr: bool,
             itr_recoverable: bool,
             spc_fired: bool,
             effect: Effect,
             faulty_signature_resident: bool) -> Outcome:
    """Combine detection, counterfactual effect and residency into a label.

    ``itr_recoverable`` is ground truth from the mismatch event: True when
    the *accessing* (still-in-pipeline) signature carried the fault, so a
    flush-and-restart recovers; False when the fault was in the stored
    signature — the faulty instance already committed.
    """
    if detected_itr:
        if effect == Effect.DEADLOCK:
            # Recovery flushes the faulty trace before it wedges the
            # machine; a non-recoverable variant degenerates to detect-only.
            return Outcome.ITR_WDOG_R if itr_recoverable \
                else Outcome.ITR_SDC_D
        if effect == Effect.SDC:
            return Outcome.ITR_SDC_R if itr_recoverable \
                else Outcome.ITR_SDC_D
        return Outcome.ITR_MASK
    if spc_fired:
        return Outcome.SPC_SDC if effect == Effect.SDC else Outcome.SPC_MASK
    if effect == Effect.DEADLOCK:
        return Outcome.UNDET_WDOG
    if effect == Effect.SDC:
        return (Outcome.MAYITR_SDC if faulty_signature_resident
                else Outcome.UNDET_SDC)
    return (Outcome.MAYITR_MASK if faulty_signature_resident
            else Outcome.UNDET_MASK)


@dataclass(frozen=True)
class TrialResult:
    """Full record of one fault-injection trial."""

    benchmark: str
    trial: int
    decode_index: int        # dynamic decode slot the fault hit
    bit: int                 # which of the 64 decode-signal bits flipped
    field: str               # Table 2 field containing that bit
    outcome: Outcome
    detected_itr: bool
    itr_recoverable: bool
    spc_fired: bool
    effect: Effect
    faulty_signature_resident: bool
    run_reason: str          # halted / max_cycles / deadlock
    instructions_committed: int
    divergence_pc: Optional[int] = None
    recovery_verified: Optional[bool] = None
    fault_pc: Optional[int] = None  # PC of the tampered instruction
                                    # (None when the fault never fired)
    error: Optional[str] = None     # harness_error diagnostic (e.g. the
                                    # exceeded wall-clock budget)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (enums as their string values).

        Inverse of :meth:`from_dict`; also the pickle-stable shape the
        parallel campaign engine ships across process boundaries for
        byte-identical serial/parallel JSON exports.
        """
        data = asdict(self)
        data["outcome"] = self.outcome.value
        data["effect"] = self.effect.value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrialResult":
        payload = dict(data)
        payload["outcome"] = Outcome(payload["outcome"])
        payload["effect"] = Effect(payload["effect"])
        return cls(**payload)
