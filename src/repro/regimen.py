"""High-level facade: run a program on an ITR-protected machine.

The paper frames ITR as one member of a *regimen* of low-overhead
microarchitecture checks (Section 1). :class:`ProtectedMachine` bundles
the whole regimen this library implements — ITR signature checking with
retry recovery, the sequential-PC check, and the watchdog — behind one
object with a single :meth:`run` and a consolidated
:class:`ProtectionReport`, so downstream users don't have to wire the
pipeline, controller and checkers themselves.

>>> from repro.isa import assemble
>>> from repro.regimen import ProtectedMachine
>>> machine = ProtectedMachine(assemble('''
... main:
...     li $a0, 7
...     li $v0, 1
...     syscall
...     li $v0, 10
...     syscall
... '''))
>>> report = machine.run()
>>> (report.outcome, machine.output)
('completed', '7')
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .isa.program import Program
from .itr.itr_cache import ItrCacheConfig
from .uarch.config import PipelineConfig
from .uarch.pipeline import (
    CommitListener,
    DecodeTamper,
    FetchTamper,
    Pipeline,
    build_pipeline,
)


@dataclass(frozen=True)
class ProtectionReport:
    """Consolidated result of one protected run."""

    outcome: str                 # completed / aborted / deadlock / timeout
    instructions: int
    cycles: int
    ipc: float
    traces_checked: int          # dispatch-time ITR cache comparisons
    itr_hit_rate: float
    mismatches_detected: int
    faults_recovered: int
    cache_faults_repaired: int
    machine_checks: int
    spc_violations: int
    mispredict_flushes: int
    #: Section 2.3 checkpoint/rollback activity (zero unless the machine
    #: was built with ``checkpointing=True``).
    rollbacks: int = 0
    watchdog_rollbacks: int = 0
    checkpoints_taken: int = 0

    @property
    def clean(self) -> bool:
        """True when no check fired at all (expected for fault-free runs)."""
        return (self.mismatches_detected == 0
                and self.spc_violations == 0
                and self.machine_checks == 0)

    @property
    def aborts(self) -> int:
        """Machine-check escalations not converted into rollbacks."""
        return self.machine_checks - self.rollbacks


class ProtectedMachine:
    """An ITR-protected superscalar machine for one program.

    Parameters mirror the paper's design space: ``cache_entries`` and
    ``cache_assoc`` select the ITR cache geometry (default: the paper's
    1024-signature 2-way point); ``recovery`` toggles the retry protocol
    (monitor mode when False); ``spc``/``watchdog_timeout`` control the
    auxiliary checks.
    """

    def __init__(self, program: Program,
                 cache_entries: int = 1024,
                 cache_assoc: int = 2,
                 recovery: bool = True,
                 spc: bool = True,
                 watchdog_timeout: int = 2000,
                 checkpointing: bool = False,
                 inputs: Optional[Sequence[int]] = None,
                 decode_tamper: Optional[DecodeTamper] = None,
                 fetch_tamper: Optional[FetchTamper] = None,
                 commit_listener: Optional[CommitListener] = None):
        config = PipelineConfig(
            watchdog_timeout=watchdog_timeout,
            itr_cache=ItrCacheConfig(entries=cache_entries,
                                     assoc=cache_assoc),
        )
        self.pipeline: Pipeline = build_pipeline(
            program,
            config=config,
            with_itr=True,
            recovery_enabled=recovery,
            inputs=inputs,
            enable_spc=spc,
            decode_tamper=decode_tamper,
            fetch_tamper=fetch_tamper,
            commit_listener=commit_listener,
            checkpointing=checkpointing,
        )

    def run(self, max_cycles: int = 2_000_000,
            max_instructions: Optional[int] = None) -> ProtectionReport:
        """Run to completion (or a bound) and consolidate the report."""
        result = self.pipeline.run(max_cycles=max_cycles,
                                   max_instructions=max_instructions)
        outcome = {
            "halted": "completed",
            "machine_check": "aborted",
            "deadlock": "deadlock",
            "max_cycles": "timeout",
            "max_instructions": "timeout",
        }[result.reason]
        itr = self.pipeline.itr.stats
        checked = itr.cache_hits + itr.cache_misses
        return ProtectionReport(
            outcome=outcome,
            instructions=result.instructions,
            cycles=result.cycles,
            ipc=self.pipeline.stats.ipc,
            traces_checked=checked,
            itr_hit_rate=itr.cache_hits / checked if checked else 0.0,
            mismatches_detected=itr.mismatches,
            faults_recovered=itr.recoveries,
            cache_faults_repaired=itr.cache_faults_repaired,
            machine_checks=itr.machine_checks,
            spc_violations=self.pipeline.stats.spc_violations,
            mispredict_flushes=self.pipeline.stats.mispredict_flushes,
            rollbacks=itr.rollbacks,
            watchdog_rollbacks=self.pipeline.stats.watchdog_rollbacks,
            checkpoints_taken=(self.pipeline.checkpoints.captures
                               if self.pipeline.checkpoints is not None
                               else 0),
        )

    @property
    def output(self) -> str:
        """Console output produced so far."""
        return self.pipeline.output
