"""Architectural layer: state, signal-driven semantics, golden simulator."""

from .functional import CommitEffect, FunctionalSimulator
from .semantics import (
    ExecResult,
    branch_target,
    direct_target,
    effective_address,
    execute,
    memory_access_size,
    operand_values,
    perform_load,
    perform_store,
)
from .state import (
    NUM_ARCH_REGS,
    ArchState,
    Memory,
    RegisterFile,
    arch_reg,
    bits_to_float,
    float_to_bits,
)
from .syscalls import OsLayer, SyscallResult

__all__ = [
    "CommitEffect",
    "FunctionalSimulator",
    "ExecResult",
    "branch_target",
    "direct_target",
    "effective_address",
    "execute",
    "memory_access_size",
    "operand_values",
    "perform_load",
    "perform_store",
    "NUM_ARCH_REGS",
    "ArchState",
    "Memory",
    "RegisterFile",
    "arch_reg",
    "bits_to_float",
    "float_to_bits",
    "OsLayer",
    "SyscallResult",
]
