"""Signal-driven execution semantics.

Both the golden functional simulator and the out-of-order cycle simulator
execute instructions through the functions in this module, which consume
**only** the 64-bit decode-signal vector plus operand values. This is the
contract that makes decode-signal fault injection meaningful: a flipped bit
changes downstream behaviour exactly the way it would in the modeled
pipeline, and the two simulators cannot diverge in fault-free runs because
they share one implementation of the semantics.

Division of responsibility between signal fields (mirrors a real pipeline):

* ``opcode`` selects the datapath computation (which ALU op, which branch
  condition). An unassigned opcode — reachable only via a fault — computes
  an undefined result, modeled as zero.
* control ``flags`` steer the pipeline: ``is_ld``/``is_st`` route to the
  LSQ, ``is_branch``/``is_uncond`` engage control-flow handling, ``is_fp``
  selects the register file, ``is_trap`` raises a syscall at commit.
* ``num_rsrc``/``num_rdst`` tell rename how many operands to map; sources
  beyond ``num_rsrc`` read as zero and results are dropped when
  ``num_rdst`` is zero.
* ``lat`` is purely timing (so latency faults are architecturally masked,
  as the paper observes).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..isa.decode_signals import DecodeSignals
from ..isa.encoding import INSTRUCTION_BYTES
from ..isa.program import TEXT_BASE
from ..utils.bitops import sign_extend, to_unsigned
from .state import Memory, bits_to_float, float_to_bits

_WORD = 0xFFFFFFFF
_INT32_MIN = -(1 << 31)
_INT32_MAX = (1 << 31) - 1


def _signed(value: int) -> int:
    return sign_extend(value, 32)


def _sext_imm(signals: DecodeSignals) -> int:
    return sign_extend(signals.imm, 16)


def _pack_float(value: float) -> int:
    """Pack a Python float to single-precision bits, saturating overflow."""
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except OverflowError:
        # Magnitude exceeds float32 range: hardware would produce +/-inf.
        return float_to_bits(float("inf") if value > 0 else float("-inf"))


def _fp_binary(op: Callable[[float, float], float],
               src1: int, src2: int) -> int:
    a = bits_to_float(src1)
    b = bits_to_float(src2)
    try:
        result = op(a, b)
    except ZeroDivisionError:
        if a != a or a == 0.0:  # NaN/0 over 0
            return float_to_bits(float("nan"))
        return float_to_bits(float("inf") if a > 0 else float("-inf"))
    return _pack_float(result)


def _cvt_w_s(src1: int) -> int:
    value = bits_to_float(src1)
    if value != value:  # NaN
        return 0
    clamped = max(min(value, float(_INT32_MAX)), float(_INT32_MIN))
    return to_unsigned(int(clamped), 32)


# ---------------------------------------------------------------------------
# ALU dispatch: opcode code -> computation over (signals, src1, src2).
# Only non-memory, non-control computations live here; loads/stores and
# branches are dispatched by their flags in the pipeline.
# ---------------------------------------------------------------------------
_AluFn = Callable[[DecodeSignals, int, int], int]

_ALU: Dict[int, _AluFn] = {
    0x00: lambda s, a, b: 0,                                        # nop
    # integer register-register
    0x10: lambda s, a, b: (a + b) & _WORD,                          # add
    0x11: lambda s, a, b: (a + b) & _WORD,                          # addu
    0x12: lambda s, a, b: (a - b) & _WORD,                          # sub
    0x13: lambda s, a, b: (a - b) & _WORD,                          # subu
    0x14: lambda s, a, b: a & b,                                    # and
    0x15: lambda s, a, b: a | b,                                    # or
    0x16: lambda s, a, b: a ^ b,                                    # xor
    0x17: lambda s, a, b: ~(a | b) & _WORD,                         # nor
    0x18: lambda s, a, b: int(_signed(a) < _signed(b)),             # slt
    0x19: lambda s, a, b: int(a < b),                               # sltu
    0x1A: lambda s, a, b: (_signed(a) * _signed(b)) & _WORD,        # mult
    0x1B: lambda s, a, b: (a * b) & _WORD,                          # multu
    0x1C: lambda s, a, b: (to_unsigned(int(_signed(a) / _signed(b)), 32)
                           if _signed(b) else 0),                   # div
    0x1D: lambda s, a, b: (a // b if b else 0),                     # divu
    0x1E: lambda s, a, b: (a << (b & 31)) & _WORD,                  # sllv
    0x1F: lambda s, a, b: a >> (b & 31),                            # srlv
    0x20: lambda s, a, b: to_unsigned(_signed(a) >> (b & 31), 32),  # srav
    # shifts by immediate amount
    0x21: lambda s, a, b: (a << s.shamt) & _WORD,                   # sll
    0x22: lambda s, a, b: a >> s.shamt,                             # srl
    0x23: lambda s, a, b: to_unsigned(_signed(a) >> s.shamt, 32),   # sra
    # integer immediates
    0x28: lambda s, a, b: (a + _sext_imm(s)) & _WORD,               # addi
    0x29: lambda s, a, b: (a + _sext_imm(s)) & _WORD,               # addiu
    0x2A: lambda s, a, b: a & s.imm,                                # andi
    0x2B: lambda s, a, b: a | s.imm,                                # ori
    0x2C: lambda s, a, b: a ^ s.imm,                                # xori
    0x2D: lambda s, a, b: int(_signed(a) < _sext_imm(s)),           # slti
    0x2E: lambda s, a, b: int(a < to_unsigned(_sext_imm(s), 32)),   # sltiu
    0x2F: lambda s, a, b: (s.imm << 16) & _WORD,                    # lui
    # floating point
    0x50: lambda s, a, b: _fp_binary(lambda x, y: x + y, a, b),     # add.s
    0x51: lambda s, a, b: _fp_binary(lambda x, y: x - y, a, b),     # sub.s
    0x52: lambda s, a, b: _fp_binary(lambda x, y: x * y, a, b),     # mul.s
    0x53: lambda s, a, b: _fp_binary(lambda x, y: x / y, a, b),     # div.s
    0x54: lambda s, a, b: _pack_float(abs(bits_to_float(a))),       # abs.s
    0x55: lambda s, a, b: _pack_float(-bits_to_float(a)),           # neg.s
    0x56: lambda s, a, b: a,                                        # mov.s
    0x57: lambda s, a, b: _pack_float(float(_signed(a))),           # cvt.s.w
    0x58: lambda s, a, b: _cvt_w_s(a),                              # cvt.w.s
    0x59: lambda s, a, b: int(bits_to_float(a) < bits_to_float(b)),  # c.lt.s
    0x5A: lambda s, a, b: int(bits_to_float(a) <= bits_to_float(b)),  # c.le.s
    0x5B: lambda s, a, b: int(bits_to_float(a) == bits_to_float(b)),  # c.eq.s
}

# Branch condition dispatch: opcode -> predicate over (src1, src2).
_BRANCH: Dict[int, Callable[[int, int], bool]] = {
    0x40: lambda a, b: a == b,                  # beq
    0x41: lambda a, b: a != b,                  # bne
    0x42: lambda a, b: _signed(a) <= 0,         # blez
    0x43: lambda a, b: _signed(a) > 0,          # bgtz
    0x44: lambda a, b: _signed(a) < 0,          # bltz
    0x45: lambda a, b: _signed(a) >= 0,         # bgez
}

@dataclass(frozen=True)
class ExecResult:
    """Outcome of executing one instruction's compute portion.

    Memory is **not** touched here — the caller (functional step loop or
    LSQ) performs the access using ``address``/``store_value``/``size``.
    """

    value: Optional[int] = None        # ALU result or link value (raw bits)
    taken: bool = False                # conditional branch outcome
    target: Optional[int] = None       # control-flow target when redirecting
    address: Optional[int] = None      # memory effective address
    store_value: Optional[int] = None  # raw bits to store (is_st only)

    @property
    def redirects(self) -> bool:
        """True when control flow leaves the fall-through path."""
        return self.target is not None


def branch_target(signals: DecodeSignals, pc: int) -> int:
    """PC-relative target of a conditional branch at ``pc``."""
    return (pc + INSTRUCTION_BYTES
            + _sext_imm(signals) * INSTRUCTION_BYTES) & _WORD


def direct_target(signals: DecodeSignals) -> int:
    """Absolute target of a direct jump (text-relative word index)."""
    return TEXT_BASE + signals.imm * INSTRUCTION_BYTES


def effective_address(signals: DecodeSignals, base: int) -> int:
    """Base+displacement effective address for loads and stores."""
    return (base + _sext_imm(signals)) & _WORD


def memory_access_size(signals: DecodeSignals) -> int:
    """Bytes accessed, clamped to the 0..4 the datapath supports.

    Fault-free vectors carry 0/1/2/4; a fault can produce any 3-bit value,
    which the hardware's byte-enable logic would clamp to the bus width.
    """
    return min(signals.mem_size, 4)


def execute(signals: DecodeSignals, src1: int, src2: int,
            pc: int) -> ExecResult:
    """Execute the compute portion of one instruction.

    ``src1``/``src2`` are the raw 32-bit values of ``rsrc1``/``rsrc2``;
    callers must already have zeroed sources beyond ``num_rsrc`` (use
    :func:`operand_values`). ``pc`` is the instruction's own PC.
    """
    if signals.is_ld:
        return ExecResult(address=effective_address(signals, src1))
    if signals.is_st:
        return ExecResult(address=effective_address(signals, src1),
                          store_value=src2 & _WORD)
    if signals.is_branch:
        predicate = _BRANCH.get(signals.opcode)
        taken = bool(predicate(src1, src2)) if predicate else False
        target = branch_target(signals, pc) if taken else None
        return ExecResult(taken=taken, target=target)
    if signals.is_uncond:
        if signals.is_direct:
            target = direct_target(signals)
        else:
            target = src1 & _WORD
        link = (pc + INSTRUCTION_BYTES) & _WORD
        return ExecResult(value=link if signals.num_rdst else None,
                          target=target)
    if signals.is_trap:
        return ExecResult()
    alu = _ALU.get(signals.opcode)
    if alu is None:
        # Unassigned opcode (reachable only through a fault): the datapath
        # produces an undefined value, modeled as zero.
        return ExecResult(value=0)
    return ExecResult(value=alu(signals, src1, src2) & _WORD)


def operand_values(signals: DecodeSignals, raw1: int, raw2: int):
    """Apply the ``num_rsrc`` gating: unneeded sources read as zero.

    In the modeled pipeline rename only maps as many sources as
    ``num_rsrc`` claims; a faulted low count makes the datapath see zero
    for the unmapped operand.
    """
    src1 = raw1 if signals.num_rsrc >= 1 else 0
    src2 = raw2 if signals.num_rsrc >= 2 else 0
    return src1, src2


def perform_load(signals: DecodeSignals, memory: Memory,
                 address: int) -> int:
    """Perform a load access and return the raw 32-bit register value.

    Implements sized loads with sign/zero extension plus the simplified
    left/right partial-word accesses (``mem_lr``): ``lwl`` fills the
    high-order bytes of the result from the aligned word start up to the
    address, ``lwr`` fills the low-order bytes from the address to the
    word end (both zero-fill the remainder).
    """
    size = memory_access_size(signals)
    if size == 0:
        return 0
    if signals.mem_lr:
        aligned = address & ~3
        byte = address & 3
        if signals.opcode == 0x36:  # lwr: address .. end of word, low bytes
            raw = memory.load_bytes(address, 4 - byte)
            return int.from_bytes(raw, "little")
        # lwl (and any faulted mem_lr op): start of word .. address,
        # placed in the high-order bytes.
        raw = memory.load_bytes(aligned, byte + 1)
        return (int.from_bytes(raw, "little") << (8 * (3 - byte))) & _WORD
    value = memory.load(address, size, signed=False)
    if signals.is_signed and size < 4:
        value = to_unsigned(sign_extend(value, 8 * size), 32)
    return value & _WORD


def perform_store(signals: DecodeSignals, memory: Memory, address: int,
                  value: int) -> None:
    """Perform a store access (sized, with simplified swl/swr)."""
    size = memory_access_size(signals)
    if size == 0:
        return
    if signals.mem_lr:
        aligned = address & ~3
        byte = address & 3
        if signals.opcode == 0x3C:  # swr: low bytes to address..word end
            memory.store(address, 4 - byte, value)
        else:                        # swl: high bytes to word start..address
            memory.store(aligned, byte + 1, value >> (8 * (3 - byte)))
        return
    memory.store(address, size, value)
