"""Fault-free golden oracle: final architectural state of a kernel.

Campaigns (and their parallel workers) repeatedly need the fault-free
answer for a kernel — console output, final register file, final memory
image — to judge reconvergence. Computing it means running the whole
program through the functional simulator, which is pure per-kernel work;
this module computes it once per process and memoizes, so a worker that
runs hundreds of trials of the same kernel pays for the golden run once.

The same oracle doubles as the differential-conformance reference: the
cycle simulator, run fault-free, must land on exactly this state (see
``tests/integration/test_differential_conformance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..isa.program import Program
from .functional import FunctionalSimulator
from .state import ArchState

#: Generous default step budget: every bundled kernel halts well within it.
DEFAULT_MAX_STEPS = 4_000_000


@dataclass(frozen=True)
class GoldenFinalState:
    """The architecturally visible end state of a fault-free run."""

    output: str
    regs: Tuple[int, ...]
    memory_digest: Tuple[Tuple[int, bytes], ...]
    instructions: int
    halted: bool

    def matches_output(self, output: str) -> bool:
        """Whether a run's console output equals the golden output."""
        return self.output == output

    def matches_state(self, state: ArchState) -> bool:
        """Whether ``state`` agrees on registers and touched memory."""
        return (state.regs.snapshot() == self.regs
                and state.memory.page_digest() == self.memory_digest)


def compute_golden_final_state(program: Program,
                               inputs: Optional[Sequence[int]] = None,
                               max_steps: int = DEFAULT_MAX_STEPS,
                               initial_state: Optional[ArchState] = None
                               ) -> GoldenFinalState:
    """Run ``program`` on the functional simulator to halt (uncached)."""
    golden = FunctionalSimulator(program, inputs=inputs,
                                 initial_state=initial_state)
    retired = golden.run_silently(max_steps)
    return GoldenFinalState(
        output=golden.output,
        regs=golden.state.regs.snapshot(),
        memory_digest=golden.state.memory.page_digest(),
        instructions=retired,
        halted=golden.halted,
    )


#: Per-process memo: (kernel name, source, inputs, max_steps) -> state.
_ORACLE_CACHE: Dict[Tuple[str, str, Tuple[int, ...], int],
                    GoldenFinalState] = {}


def golden_final_state(kernel, max_steps: int = DEFAULT_MAX_STEPS
                       ) -> GoldenFinalState:
    """Memoized golden final state for a kernel (keyed on its source).

    The key includes the kernel's assembly source, not just its name, so
    synthesized kernels that reuse a name can never alias a stale entry.
    """
    key = (kernel.name, kernel.source, tuple(kernel.inputs), max_steps)
    cached = _ORACLE_CACHE.get(key)
    if cached is None:
        cached = compute_golden_final_state(
            kernel.program(), inputs=kernel.inputs, max_steps=max_steps)
        _ORACLE_CACHE[key] = cached
    return cached


def clear_oracle_cache() -> None:
    """Drop all memoized golden states (test isolation hook)."""
    _ORACLE_CACHE.clear()
