"""Architectural state: register files and byte-addressable memory.

Values are stored uniformly as raw 32-bit unsigned integers; floating-point
registers hold IEEE-754 single-precision bit patterns. This keeps the
rename/bypass/commit datapaths of the cycle simulator type-free, exactly as
hardware is, and makes golden-vs-faulty state comparison a plain integer
compare.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import MemoryFault
from ..isa.program import DATA_BASE, STACK_TOP, Program
from ..isa.registers import NUM_FP_REGS, NUM_INT_REGS

#: Number of architectural registers in the unified specifier space
#: (integer file at indices 0..31, FP file at 32..63).
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_ADDRESS_LIMIT = 1 << 32


def arch_reg(index: int, is_fp: bool) -> int:
    """Map a 5-bit specifier plus file-select into unified register space."""
    if not 0 <= index < 32:
        raise ValueError(f"register specifier {index} out of range")
    return index + (NUM_INT_REGS if is_fp else 0)


def float_to_bits(value: float) -> int:
    """IEEE-754 single-precision bit pattern of ``value``."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float(bits: int) -> float:
    """Value of the IEEE-754 single-precision pattern ``bits``."""
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


class RegisterFile:
    """Unified 64-entry architectural register file (raw 32-bit values).

    Integer register 0 is hardwired to zero, as in MIPS/PISA.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[int] = [0] * NUM_ARCH_REGS

    def read(self, reg: int) -> int:
        """Raw 32-bit value of unified register ``reg``."""
        return self._values[reg]

    def write(self, reg: int, value: int) -> None:
        """Write ``value`` (masked to 32 bits); integer $zero is dropped."""
        if reg == 0:
            return  # $zero is hardwired
        self._values[reg] = value & 0xFFFFFFFF

    def read_int(self, index: int) -> int:
        """Read integer register ``index``."""
        return self._values[arch_reg(index, False)]

    def write_int(self, index: int, value: int) -> None:
        """Write integer register ``index``."""
        self.write(arch_reg(index, False), value)

    def read_fp(self, index: int) -> float:
        """Read FP register ``index`` as a Python float."""
        return bits_to_float(self._values[arch_reg(index, True)])

    def write_fp(self, index: int, value: float) -> None:
        """Write FP register ``index`` from a Python float."""
        self.write(arch_reg(index, True), float_to_bits(value))

    def snapshot(self) -> Tuple[int, ...]:
        """Immutable copy of all 64 register values."""
        return tuple(self._values)

    def restore(self, snapshot: Tuple[int, ...]) -> None:
        """Restore values from a prior :meth:`snapshot`."""
        if len(snapshot) != NUM_ARCH_REGS:
            raise ValueError("register snapshot has wrong length")
        self._values = list(snapshot)

    def copy(self) -> "RegisterFile":
        """Independent deep copy of the register file."""
        clone = RegisterFile()
        clone._values = list(self._values)
        return clone

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RegisterFile):
            return self._values == other._values
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(tuple(self._values))


#: Pre-write hook: ``(address, size)`` of a store about to land. The
#: architectural checkpoint unit uses it to capture copy-on-write page
#: pre-images; ``None`` (the default) costs nothing on the store path.
WriteObserver = Callable[[int, int], None]


class Memory:
    """Sparse paged little-endian byte-addressable memory (32-bit space)."""

    __slots__ = ("_pages", "_write_observer", "_shared")

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        self._write_observer: Optional[WriteObserver] = None
        #: Page numbers whose backing store is shared with another Memory
        #: (see :meth:`cow_fork`); they must be copied before mutation.
        self._shared: set = set()

    def _page(self, address: int, create: bool) -> Optional[bytearray]:
        number = address >> _PAGE_BITS
        page = self._pages.get(number)
        if page is None and create:
            page = bytearray(_PAGE_SIZE)
            self._pages[number] = page
        return page

    def _unshare(self, number: int) -> None:
        """Materialize a private copy of one shared page before writing."""
        if number in self._shared:
            page = self._pages.get(number)
            if page is not None:
                self._pages[number] = bytearray(page)
            self._shared.discard(number)

    def _check(self, address: int, size: int) -> None:
        if address < 0 or address + size > _ADDRESS_LIMIT:
            raise MemoryFault(address, f"{size}-byte access out of range")

    def load_bytes(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes; untouched memory reads as zero."""
        self._check(address, size)
        out = bytearray()
        while size > 0:
            offset = address & (_PAGE_SIZE - 1)
            chunk = min(size, _PAGE_SIZE - offset)
            page = self._page(address, create=False)
            if page is None:
                out += bytes(chunk)
            else:
                out += page[offset:offset + chunk]
            address += chunk
            size -= chunk
        return bytes(out)

    def store_bytes(self, address: int, data: bytes) -> None:
        """Write raw ``data`` bytes starting at ``address``."""
        self._check(address, len(data))
        if self._write_observer is not None:
            self._write_observer(address, len(data))
        position = 0
        while position < len(data):
            offset = address & (_PAGE_SIZE - 1)
            chunk = min(len(data) - position, _PAGE_SIZE - offset)
            if self._shared:
                self._unshare(address >> _PAGE_BITS)
            page = self._page(address, create=True)
            page[offset:offset + chunk] = data[position:position + chunk]
            address += chunk
            position += chunk

    def load(self, address: int, size: int, signed: bool = False) -> int:
        """Load an integer of ``size`` bytes (1, 2 or 4), little-endian."""
        raw = self.load_bytes(address, size)
        return int.from_bytes(raw, "little", signed=signed)

    def store(self, address: int, size: int, value: int) -> None:
        """Store the low ``size`` bytes of ``value``, little-endian."""
        self.store_bytes(address, (value & ((1 << (8 * size)) - 1))
                         .to_bytes(size, "little"))

    def load_cstring(self, address: int, limit: int = 4096) -> str:
        """Read a NUL-terminated string (used by the print-string syscall)."""
        chars = bytearray()
        for index in range(limit):
            byte = self.load_bytes(address + index, 1)[0]
            if byte == 0:
                break
            chars.append(byte)
        return chars.decode("latin-1")

    def copy(self) -> "Memory":
        """Independent deep copy of all touched pages (observer not shared)."""
        clone = Memory()
        clone._pages = {num: bytearray(page)
                        for num, page in self._pages.items()}
        return clone

    def cow_fork(self) -> "Memory":
        """Copy-on-write fork: share every page until one side writes it.

        Both this memory and the fork mark all current pages shared; the
        first ``store_bytes``/``restore_page`` touching a shared page
        materializes a private copy, so forks stay fully independent while
        a fork costs O(pages) pointer copies instead of O(bytes). This is
        the warm-start reset the parallel campaign workers use: build the
        program's initial state once, fork it per trial.
        """
        clone = Memory()
        clone._pages = dict(self._pages)
        clone._shared = set(self._pages)
        self._shared.update(self._pages)
        return clone

    # --------------------------------------------------- checkpointing hooks
    def set_write_observer(self, observer: Optional[WriteObserver]) -> None:
        """Install (or clear) the pre-write hook used for COW journaling."""
        self._write_observer = observer

    @staticmethod
    def pages_spanned(address: int, size: int) -> Iterator[int]:
        """Page numbers a ``size``-byte write at ``address`` touches."""
        first = address >> _PAGE_BITS
        last = (address + max(size, 1) - 1) >> _PAGE_BITS
        return iter(range(first, last + 1))

    def snapshot_page(self, number: int) -> Optional[bytes]:
        """Pre-image of one page; ``None`` when the page is still unbacked."""
        page = self._pages.get(number)
        return bytes(page) if page is not None else None

    def restore_page(self, number: int, image: Optional[bytes]) -> None:
        """Put one page back to a prior pre-image (bypasses the observer)."""
        self._shared.discard(number)
        if image is None:
            self._pages.pop(number, None)
        else:
            self._pages[number] = bytearray(image)

    def touched_pages(self) -> Iterator[int]:
        """Page numbers that have been written (for state comparison)."""
        return iter(sorted(self._pages))

    def page_digest(self) -> Tuple[Tuple[int, bytes], ...]:
        """Stable digest of all touched pages (golden-vs-faulty compare)."""
        return tuple((num, bytes(self._pages[num]))
                     for num in sorted(self._pages))


class ArchState:
    """Complete architectural state: PC + registers + memory."""

    __slots__ = ("pc", "regs", "memory")

    def __init__(self, pc: int = 0):
        self.pc = pc
        self.regs = RegisterFile()
        self.memory = Memory()

    @classmethod
    def from_program(cls, program: Program,
                     stack_pointer: int = STACK_TOP) -> "ArchState":
        """Build the initial state for ``program`` (ABI reset state).

        Loads the data segment, points ``$sp`` at the stack top and ``$gp``
        at the data base, and sets the PC to the program entry.
        """
        state = cls(pc=program.entry)
        if program.data:
            state.memory.store_bytes(DATA_BASE, program.data)
        state.regs.write_int(29, stack_pointer)  # $sp
        state.regs.write_int(28, DATA_BASE)      # $gp
        return state

    def copy(self) -> "ArchState":
        """Independent deep copy of PC, registers and memory."""
        clone = ArchState(pc=self.pc)
        clone.regs = self.regs.copy()
        clone.memory = self.memory.copy()
        return clone

    def cow_fork(self) -> "ArchState":
        """Cheap independent fork: registers copied, memory copy-on-write.

        The warm-start reset hook for campaign workers — fork the
        program's pristine initial state per trial instead of rebuilding
        it (and re-storing the data segment) from the program image.
        """
        clone = ArchState(pc=self.pc)
        clone.regs = self.regs.copy()
        clone.memory = self.memory.cow_fork()
        return clone
