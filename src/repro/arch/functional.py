"""Functional (golden) simulator.

Executes one architectural instruction per :meth:`FunctionalSimulator.step`
through the same signal-driven semantics the cycle simulator uses, and
emits a :class:`CommitEffect` per instruction. Fault-injection campaigns
run this as the fault-free reference and compare effects in commit order
(paper Section 4: a "golden" simulator runs in parallel with the faulty
one and committed state is compared).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import SimulationError
from ..isa.decode_signals import DecodeSignals, decode
from ..isa.encoding import INSTRUCTION_BYTES
from ..isa.program import Program
from .semantics import (
    execute,
    memory_access_size,
    operand_values,
    perform_load,
    perform_store,
)
from .state import ArchState, arch_reg
from .syscalls import OsLayer

_V0 = 2


@dataclass(frozen=True)
class CommitEffect:
    """The externally visible effect of committing one instruction.

    Two simulators agree architecturally iff their commit-effect streams
    are identical element by element. ``dest`` uses the unified 64-entry
    register space (FP registers at 32..63).
    """

    pc: int
    next_pc: int
    dest: Optional[int] = None
    value: Optional[int] = None
    store_address: Optional[int] = None
    store_size: int = 0
    store_value: Optional[int] = None
    output: Optional[str] = None
    halted: bool = False

    def same_architectural_effect(self, other: "CommitEffect") -> bool:
        """Compare every architecturally visible field."""
        return (self.pc == other.pc
                and self.next_pc == other.next_pc
                and self.dest == other.dest
                and self.value == other.value
                and self.store_address == other.store_address
                and self.store_size == other.store_size
                and self.store_value == other.store_value
                and self.output == other.output
                and self.halted == other.halted)


class FunctionalSimulator:
    """In-order, one-instruction-at-a-time architectural executor."""

    def __init__(self, program: Program,
                 inputs: Optional[Sequence[int]] = None,
                 os_seed: int = 1,
                 initial_state: Optional[ArchState] = None):
        self.program = program
        # Warm-start reset hook: a caller that runs many trials of the
        # same program builds the pristine state once and passes a
        # cow_fork() per trial instead of re-storing the data segment.
        self.state = initial_state if initial_state is not None \
            else ArchState.from_program(program)
        self.os = OsLayer(inputs=inputs, seed=os_seed)
        self.halted = False
        self.instructions_retired = 0
        self._signals_cache: Dict[int, DecodeSignals] = {}

    def _signals_at(self, pc: int) -> DecodeSignals:
        """Decode signals for the instruction at ``pc`` (memoized).

        ``decode`` is a pure function of the immutable instruction word,
        so per-PC memoization is exact; it removes the dominant per-step
        cost on hot loops.
        """
        signals = self._signals_cache.get(pc)
        if signals is None:
            signals = decode(self.program.instruction_at(pc))
            self._signals_cache[pc] = signals
        return signals

    def override_signals(self, pc: int, signals: DecodeSignals) -> None:
        """Pin the decode vector of ``pc`` for the rest of this run.

        Fault-replay oracles use this to execute *every* occurrence of
        one static instruction with a tampered decode vector while the
        rest of the program decodes normally. Overriding is sticky:
        the memo cache is never invalidated.
        """
        self._signals_cache[pc] = signals

    def step(self) -> CommitEffect:
        """Execute and commit exactly one instruction."""
        if self.halted:
            raise SimulationError("stepping a halted simulator")
        state = self.state
        pc = state.pc
        signals = self._signals_at(pc)
        effect = self._execute_signals(signals, pc)
        self._apply(effect, signals)
        self.instructions_retired += 1
        return effect

    def _execute_signals(self, signals: DecodeSignals,
                         pc: int) -> CommitEffect:
        state = self.state
        raw1 = state.regs.read(arch_reg(signals.rsrc1, signals.rsrc1_is_fp))
        raw2 = state.regs.read(arch_reg(signals.rsrc2, signals.rsrc2_is_fp))
        src1, src2 = operand_values(signals, raw1, raw2)
        result = execute(signals, src1, src2, pc)
        fallthrough = (pc + INSTRUCTION_BYTES) & 0xFFFFFFFF
        next_pc = result.target if result.target is not None else fallthrough

        dest: Optional[int] = None
        value: Optional[int] = None
        store_address: Optional[int] = None
        store_size = 0
        store_value: Optional[int] = None
        output: Optional[str] = None
        halted = False

        if signals.is_ld:
            loaded = perform_load(signals, state.memory, result.address)
            if signals.num_rdst:
                dest = arch_reg(signals.rdst, signals.rdst_is_fp)
                value = loaded
        elif signals.is_st:
            store_address = result.address
            store_size = memory_access_size(signals)
            store_value = result.store_value
        elif signals.is_trap:
            outcome = self.os.syscall(state)
            output = outcome.output
            halted = outcome.halted
            if outcome.v0 is not None:
                dest = arch_reg(_V0, False)
                value = outcome.v0
        else:
            if signals.num_rdst and result.value is not None:
                dest = arch_reg(signals.rdst, signals.rdst_is_fp)
                value = result.value

        return CommitEffect(
            pc=pc,
            next_pc=next_pc,
            dest=dest,
            value=value,
            store_address=store_address,
            store_size=store_size,
            store_value=store_value,
            output=output,
            halted=halted,
        )

    def _apply(self, effect: CommitEffect, signals: DecodeSignals) -> None:
        state = self.state
        if effect.dest is not None and effect.value is not None:
            state.regs.write(effect.dest, effect.value)
        if effect.store_address is not None and effect.store_size:
            perform_store(signals, state.memory, effect.store_address,
                          effect.store_value or 0)
        state.pc = effect.next_pc
        if effect.halted:
            self.halted = True

    def run(self, max_steps: int = 1_000_000) -> List[CommitEffect]:
        """Run to halt or ``max_steps``; returns all commit effects."""
        effects: List[CommitEffect] = []
        for _ in range(max_steps):
            effects.append(self.step())
            if self.halted:
                break
        return effects

    def run_silently(self, max_steps: int = 1_000_000) -> int:
        """Run to halt or ``max_steps`` without keeping effects.

        Returns the number of instructions retired. Used when only final
        state / console output matters.
        """
        for count in range(1, max_steps + 1):
            self.step()
            if self.halted:
                return count
        return max_steps

    def effects(self, max_steps: int = 10_000_000) -> Iterator[CommitEffect]:
        """Lazy commit-effect stream (golden reference for lockstep runs)."""
        for _ in range(max_steps):
            if self.halted:
                return
            yield self.step()

    @property
    def output(self) -> str:
        return self.os.output_text()
