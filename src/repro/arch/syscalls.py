"""Tiny OS layer: the syscall services benchmark kernels rely on.

Convention (MIPS-SPIM-like): the service number is in ``$v0``, the argument
in ``$a0``; results return in ``$v0``.

=======  ==============  ============================================
service  name            behaviour
=======  ==============  ============================================
1        print_int       append str(signed $a0) to output
4        print_string    append the NUL-terminated string at $a0
5        read_int        $v0 = next value from the input queue (0 when
                         exhausted)
10       exit            halt the program
11       print_char      append chr($a0 & 0xFF)
40       srand           seed the OS PRNG with $a0
41       rand            $v0 = next PRNG value; modulo $a0 when $a0 > 0
=======  ==============  ============================================

Unknown services are no-ops: a fault can scribble on ``$v0`` before a trap
commits, and the machine must not fall over when that happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..utils.bitops import sign_extend
from .state import ArchState

#: Service numbers.
PRINT_INT = 1
PRINT_STRING = 4
READ_INT = 5
EXIT = 10
PRINT_CHAR = 11
SRAND = 40
RAND = 41

_V0 = 2
_A0 = 4

_LCG_MULT = 1103515245
_LCG_INC = 12345
_LCG_MASK = 0x7FFFFFFF


@dataclass
class SyscallResult:
    """Outcome of one trap: output text, optional $v0 result, halt flag."""

    output: Optional[str] = None
    v0: Optional[int] = None
    halted: bool = False


class OsLayer:
    """Deterministic OS model: console output, input queue, PRNG.

    A fresh instance is created per simulation; golden and faulty runs each
    get their own so their observable output streams can be compared.
    """

    def __init__(self, inputs: Optional[Sequence[int]] = None,
                 seed: int = 1):
        self.output: List[str] = []
        self._inputs: List[int] = list(inputs or [])
        self._input_pos = 0
        self._lcg_state = seed & _LCG_MASK

    def _next_rand(self) -> int:
        self._lcg_state = (self._lcg_state * _LCG_MULT + _LCG_INC) & _LCG_MASK
        return self._lcg_state

    def syscall(self, state: ArchState) -> SyscallResult:
        """Service the trap described by the architectural registers.

        The caller applies ``v0`` (when present) to the register file and
        honours ``halted``; this method itself never mutates ``state``.
        """
        service = state.regs.read_int(_V0)
        arg = state.regs.read_int(_A0)
        if service == PRINT_INT:
            text = str(sign_extend(arg, 32))
            self.output.append(text)
            return SyscallResult(output=text)
        if service == PRINT_STRING:
            text = state.memory.load_cstring(arg)
            self.output.append(text)
            return SyscallResult(output=text)
        if service == READ_INT:
            if self._input_pos < len(self._inputs):
                value = self._inputs[self._input_pos] & 0xFFFFFFFF
                self._input_pos += 1
            else:
                value = 0
            return SyscallResult(v0=value)
        if service == EXIT:
            return SyscallResult(halted=True)
        if service == PRINT_CHAR:
            text = chr(arg & 0xFF)
            self.output.append(text)
            return SyscallResult(output=text)
        if service == SRAND:
            self._lcg_state = arg & _LCG_MASK
            return SyscallResult()
        if service == RAND:
            value = self._next_rand()
            if arg:
                value %= arg
            return SyscallResult(v0=value)
        # Unknown service (possible after a fault): architected no-op.
        return SyscallResult()

    def output_text(self) -> str:
        """The full console output so far."""
        return "".join(self.output)

    # --------------------------------------------------- checkpointing hooks
    def snapshot(self) -> Tuple[int, int, int]:
        """Capture the OS-visible state: output length, input cursor, PRNG.

        Output entries are append-only, so truncating back to the captured
        length on :meth:`restore` makes a rollback un-print everything the
        squashed (possibly faulty) execution emitted.
        """
        return (len(self.output), self._input_pos, self._lcg_state)

    def restore(self, snapshot: Tuple[int, int, int]) -> None:
        """Roll the OS layer back to a prior :meth:`snapshot`."""
        output_len, input_pos, lcg_state = snapshot
        del self.output[output_len:]
        self._input_pos = input_pos
        self._lcg_state = lcg_state
