"""Exception hierarchy for the ITR reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause, while still being able
to distinguish assembler problems from simulator problems from experiment
configuration problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class IsaError(ReproError):
    """Base class for ISA-level problems (encoding, decoding, assembly)."""


class AssemblerError(IsaError):
    """Raised when assembly source cannot be translated into a program.

    Carries the offending line number (1-based) when known, so tools can
    point the user at the exact source location.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(IsaError):
    """Raised when an instruction field does not fit its encoding slot."""


class DecodingError(IsaError):
    """Raised when a machine word cannot be decoded into an instruction."""


class SimulationError(ReproError):
    """Base class for runtime problems inside a simulator."""


class MemoryFault(SimulationError):
    """Raised on an out-of-range or misaligned memory access."""

    def __init__(self, address: int, reason: str = "bad address"):
        self.address = address
        super().__init__(f"memory fault at 0x{address:08x}: {reason}")


class InvalidInstruction(SimulationError):
    """Raised when the functional simulator meets an unexecutable word."""


class DeadlockError(SimulationError):
    """Raised when a cycle simulator makes no forward progress.

    In fault-injection campaigns this is normally *caught* and classified as
    a watchdog-detected outcome rather than propagated.
    """

    def __init__(self, cycle: int, message: str = "pipeline deadlock"):
        self.cycle = cycle
        super().__init__(f"{message} at cycle {cycle}")


class ItrRobIntegrityError(SimulationError):
    """Raised when an ITR ROB entry's one-hot control bits are illegal.

    The ``chk``/``miss``/``retry`` bits are stored one-hot (paper Section
    2.4) precisely so that a single-event upset inside the ITR ROB produces
    a *detectable* invalid code word instead of silently selecting another
    legal state. Reading such an entry raises this error rather than
    letting the corrupt entry masquerade as clean.
    """

    def __init__(self, seq: int, code: int):
        self.seq = seq
        self.code = code
        super().__init__(
            f"ITR ROB entry {seq} holds illegal one-hot control code "
            f"0b{code:04b} (internal single-event upset detected)"
        )


class MachineCheckException(SimulationError):
    """Raised when the ITR machinery determines state is unrecoverable.

    Mirrors the paper's "machine check exception": the previous instance of
    a trace was faulty, architectural state may be corrupt, and the program
    must be aborted (or rolled back to a coarse-grain checkpoint).
    """

    def __init__(self, pc: int, reason: str):
        self.pc = pc
        self.reason = reason
        super().__init__(f"machine check at pc=0x{pc:08x}: {reason}")


class ConfigError(ReproError):
    """Raised for invalid simulator / cache / experiment configurations."""


class WorkloadError(ReproError):
    """Raised when a workload cannot be constructed or located."""


class ExperimentError(ReproError):
    """Raised when an experiment driver is misconfigured or fails."""
