"""Watchdog timer (paper Section 4).

Detects deadlocks caused by faults (e.g. an instruction waiting forever on
a source that will never be produced, or a fetch unit wedged on a wild
PC): if no instruction commits for ``timeout`` consecutive cycles the
watchdog fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class WatchdogEvent:
    """A watchdog expiry."""

    cycle: int
    last_commit_cycle: int


class Watchdog:
    """Commit-progress watchdog with a cycle-count timeout."""

    def __init__(self, timeout: int = 2000):
        if timeout < 1:
            raise ValueError(f"watchdog timeout must be >= 1, got {timeout}")
        self.timeout = timeout
        self._last_commit_cycle = 0
        self.fired: Optional[WatchdogEvent] = None

    def note_commit(self, cycle: int) -> None:
        """Record forward progress."""
        self._last_commit_cycle = cycle

    def tick(self, cycle: int) -> bool:
        """Advance to ``cycle``; returns True (once) when the timer expires."""
        if self.fired is not None:
            return False
        if cycle - self._last_commit_cycle >= self.timeout:
            self.fired = WatchdogEvent(cycle=cycle,
                                       last_commit_cycle=self._last_commit_cycle)
            return True
        return False

    def reset(self, cycle: int) -> None:
        """Re-arm after a recovery flush."""
        self._last_commit_cycle = cycle
        self.fired = None
