"""Sequential-PC check at retirement (paper Sections 2.5 and 4).

Maintains a *commit PC* alongside the retirement stream:

* a committing instruction's own PC must equal the commit PC — a mismatch
  means two otherwise-sequential traces were discontinuous (e.g. a PC
  fault at a natural trace boundary, or an ``is_branch`` flag fault that
  left a misprediction unrepaired);
* after committing, sequential instructions advance the commit PC by their
  length, while control transfers (as identified by *their decode
  signals*) load it with their calculated target.

Because the update rule consults the possibly-faulty ``is_branch`` /
``is_uncond`` signals, the check fires exactly in the paper's scenario: a
branch whose ``is_branch`` was flipped off updates the commit PC
sequentially while the fetch stream followed the predicted-taken path, so
the next retiring PC disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa.decode_signals import DecodeSignals
from ..isa.encoding import INSTRUCTION_BYTES


@dataclass
class SpcEvent:
    """A sequential-PC check violation."""

    expected_pc: int
    actual_pc: int
    cycle: int


class SequentialPcChecker:
    """Retirement-side commit-PC tracker."""

    def __init__(self) -> None:
        self._commit_pc: Optional[int] = None
        self.violations = 0
        self.first_event: Optional[SpcEvent] = None

    def reset(self, pc: Optional[int] = None) -> None:
        """Re-seed after a flush/redirect (the redirect PC is authoritative)."""
        self._commit_pc = pc

    def check_and_update(self, pc: int, signals: DecodeSignals,
                         computed_target: Optional[int],
                         cycle: int = 0) -> bool:
        """Check one retiring instruction; returns True when it passes.

        ``computed_target`` is the execution-calculated next PC for control
        transfers (taken target, or fall-through for a not-taken branch).
        """
        ok = True
        if self._commit_pc is not None and pc != self._commit_pc:
            ok = False
            self.violations += 1
            if self.first_event is None:
                self.first_event = SpcEvent(
                    expected_pc=self._commit_pc, actual_pc=pc, cycle=cycle)
        if signals.is_control and computed_target is not None:
            self._commit_pc = computed_target
        else:
            self._commit_pc = (pc + INSTRUCTION_BYTES) & 0xFFFFFFFF
        return ok
