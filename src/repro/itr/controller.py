"""ITR controller: the microarchitectural support of paper Section 2.

Wires together the decode-side :class:`SignatureGenerator`, the
:class:`ItrRob` and the :class:`ItrCache`, and implements the commit-side
protocol:

* dispatch-time ITR cache access when a trace completes at decode
  (hit → compare, set ``chk`` and possibly ``retry``; miss → set ``miss``)
* commit-time polling of the ITR ROB head: stall while the trace is
  unformed/unchecked, write missed signatures to the cache, free the head
  when the trace-terminating instruction retires
* the retry protocol on a signature mismatch: flush and restart from the
  trace's start PC; a second mismatch means the *previous* instance was
  faulty and architectural state is corrupt → machine check — unless line
  parity reveals the fault was inside the ITR cache itself, in which case
  the line is repaired and execution continues (Section 2.4)

A *monitor mode* (``recovery_enabled=False``) records every detection
without acting on it; fault-injection campaigns use it to obtain the
paper's counterfactual labels ("would have led to SDC") from a single run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..isa.decode_signals import DecodeSignals
from .itr_cache import ItrCache, ItrCacheConfig
from .itr_rob import ItrRob, ItrRobEntry
from .signature import SignatureGenerator, TraceSignature


class CommitAction(enum.Enum):
    """Commit-side decision for the instruction at the ROB head."""

    PROCEED = "proceed"
    STALL = "stall"
    RETRY_FLUSH = "retry_flush"
    MACHINE_CHECK = "machine_check"


@dataclass(frozen=True)
class CommitDecision:
    action: CommitAction
    restart_pc: Optional[int] = None  # for RETRY_FLUSH
    # MACHINE_CHECK escalation metadata, consumed by the pipeline's
    # checkpoint-rollback path (None for every other action):
    trace_seq: Optional[int] = None       # ITR ROB seq of the detecting trace
    poisoned_pc: Optional[int] = None     # start PC of the faulty stored line
    #: Committed-instruction count before the faulty (stored) instance began
    #: committing; a rollback target checkpoint must precede this bound.
    fault_commit_bound: Optional[int] = None


@dataclass
class MismatchEvent:
    """One ITR signature mismatch, with simulation ground truth attached."""

    trace_seq: int
    start_pc: int
    cycle: int
    accessing_tainted: bool       # the newly executed instance was faulty
    stored_tainted: bool          # the cache-resident signature was faulty
    stored_parity_ok: bool
    resolution: str = "pending"   # retry/recovered/machine_check/rollback/
    #                               cache_fault_repaired/monitor


@dataclass
class ItrStats:
    traces_dispatched: int = 0
    cache_hits: int = 0
    forwarded_hits: int = 0   # hits satisfied by ITR ROB forwarding
    cache_misses: int = 0
    mismatches: int = 0
    retries: int = 0
    recoveries: int = 0
    cache_faults_repaired: int = 0
    machine_checks: int = 0   # second-mismatch escalations raised
    rollbacks: int = 0        # escalations converted to checkpoint rollbacks
    commit_stalls: int = 0

    @property
    def aborts(self) -> int:
        """Escalations that actually ended the program (no checkpoint)."""
        return self.machine_checks - self.rollbacks


class ItrProbe:
    """Passive observer of trace dispatch/commit (no behavioural effect).

    The fault-site analyzer attaches one to a fault-free reference run to
    learn, per dynamic trace instance, how the ITR access resolved
    (``forward``/``hit``/``miss``) and whether the instance ultimately
    committed — the dynamic facts its equivalence classes fold over.
    """

    def on_trace_dispatch(self, seq: int, trace: TraceSignature,
                          source: str) -> None:
        """A completed trace accessed the ITR machinery at decode."""

    def on_trace_commit(self, seq: int) -> None:
        """The trace at the ITR ROB head fully committed."""


class ItrController:
    """Decode- and commit-side ITR machinery for one pipeline instance."""

    def __init__(self,
                 cache_config: ItrCacheConfig = ItrCacheConfig(),
                 itr_rob_capacity: int = 48,
                 recovery_enabled: bool = True,
                 trace_limit: int = 16):
        self.cache = ItrCache(cache_config)
        self.rob = ItrRob(itr_rob_capacity)
        self.generator = SignatureGenerator(max_length=trace_limit)
        self.recovery_enabled = recovery_enabled
        self.stats = ItrStats()
        self.events: List[MismatchEvent] = []
        #: Optional passive observer (see :class:`ItrProbe`).
        self.probe: Optional[ItrProbe] = None
        # Retry protocol state: start PC of the trace being re-executed
        # after a mismatch-triggered flush, or None.
        self._retry_pc: Optional[int] = None

    # ------------------------------------------------------------ decode side
    def ready_for_decode(self) -> bool:
        """False when the ITR ROB is full: decode must stall, because a
        decoded instruction might complete a trace needing an entry."""
        return not self.rob.full

    def on_decode(self, pc: int, signals: DecodeSignals,
                  tainted: bool = False, cycle: int = 0):
        """Fold one decoded instruction into the current trace.

        Returns ``(trace_seq, ended)``: the sequence number of the trace
        the instruction belongs to (the pipeline stores it in the
        instruction's ROB entry) and whether this instruction terminated
        the trace — by a control transfer, a trap, or the 16-instruction
        limit. On termination the completed signature is dispatched into
        the ITR ROB and the ITR cache is accessed.
        """
        trace_seq = self.rob.next_seq
        completed = self.generator.add(pc, signals, tainted=tainted)
        if completed is not None:
            self._dispatch_trace(completed, cycle)
        return trace_seq, completed is not None

    def _dispatch_trace(self, trace: TraceSignature, cycle: int) -> None:
        entry = self.rob.dispatch(trace)
        if entry is None:
            raise RuntimeError(
                "ITR ROB overflow: pipeline must stall decode when "
                "ready_for_decode() is False"
            )
        self.stats.traces_dispatched += 1
        # ITR ROB forwarding: an older in-flight instance of the same
        # trace is the most recent signature — comparing against it closes
        # the dispatch-read / commit-write race of tight loops, where the
        # next instance dispatches before the missed one has written the
        # cache. (Analogous to store-to-load forwarding in the LSQ.)
        older = self.rob.newest_for_pc(trace.start_pc, entry.seq)
        if older is not None:
            self.stats.cache_hits += 1
            self.stats.forwarded_hits += 1
            entry.cached_signature = older.trace.signature
            entry.cached_tainted = older.trace.tainted
            entry.cached_writer_seq = older.seq
            entry.cached_parity_ok = True
            mismatch = older.trace.signature != trace.signature
            entry.mark_checked(mismatch)
            if mismatch:
                self._record_mismatch(entry, trace, cycle,
                                      stored_tainted=older.trace.tainted,
                                      stored_parity_ok=True)
            else:
                older.confirmed_in_flight = True
            if self.probe is not None:
                self.probe.on_trace_dispatch(entry.seq, trace, "forward")
            return
        line = self.cache.lookup(trace.start_pc)
        if line is None:
            self.stats.cache_misses += 1
            entry.mark_miss()
            if self.probe is not None:
                self.probe.on_trace_dispatch(entry.seq, trace, "miss")
            return
        self.stats.cache_hits += 1
        entry.cached_signature = line.signature
        entry.cached_tainted = line.tainted
        entry.cached_writer_seq = line.writer_seq
        entry.cached_writer_commit = line.writer_commit
        entry.cached_parity_ok = line.parity_ok()
        mismatch = line.signature != trace.signature
        entry.mark_checked(mismatch)
        if mismatch:
            self._record_mismatch(entry, trace, cycle,
                                  stored_tainted=line.tainted,
                                  stored_parity_ok=entry.cached_parity_ok)
        if self.probe is not None:
            self.probe.on_trace_dispatch(entry.seq, trace, "hit")

    def _record_mismatch(self, entry: ItrRobEntry, trace: TraceSignature,
                         cycle: int, stored_tainted: bool,
                         stored_parity_ok: bool) -> None:
        self.stats.mismatches += 1
        self.events.append(MismatchEvent(
            trace_seq=entry.seq,
            start_pc=trace.start_pc,
            cycle=cycle,
            accessing_tainted=trace.tainted,
            stored_tainted=stored_tainted,
            stored_parity_ok=stored_parity_ok,
        ))

    # ------------------------------------------------------------ commit side
    def commit_check(self, trace_seq: int, cycle: int = 0,
                     instructions: int = 0) -> CommitDecision:
        """Poll the ITR ROB head for the instruction about to commit.

        Implements the paper's Section 2.2 decision table. Must be called
        before each commit; the caller honours the returned action.
        ``instructions`` is the cumulative committed-instruction count (the
        provenance bound recorded when a repair rewrites a cache line).
        """
        head = self.rob.head()
        if head is None or head.seq != trace_seq:
            # Trace not yet formed at decode: stall commit.
            self.stats.commit_stalls += 1
            return CommitDecision(CommitAction.STALL)
        if head.missed:
            return CommitDecision(CommitAction.PROCEED)
        if not head.resolved:
            self.stats.commit_stalls += 1
            return CommitDecision(CommitAction.STALL)
        if not head.retry:
            return CommitDecision(CommitAction.PROCEED)
        # Signature mismatch on this trace.
        return self._resolve_mismatch(head, cycle, instructions)

    def _resolve_mismatch(self, head: ItrRobEntry, cycle: int,
                          instructions: int = 0) -> CommitDecision:
        event = self._event_for(head.seq)
        if not self.recovery_enabled:
            # Monitor mode: record and continue (counterfactual labeling).
            if event is not None and event.resolution == "pending":
                event.resolution = "monitor"
            return CommitDecision(CommitAction.PROCEED)
        start_pc = head.trace.start_pc
        if self._retry_pc != start_pc:
            # First mismatch: flush and re-execute from the trace start.
            self.stats.retries += 1
            self._retry_pc = start_pc
            if event is not None:
                event.resolution = "retry"
            return CommitDecision(CommitAction.RETRY_FLUSH,
                                  restart_pc=start_pc)
        # Second mismatch on the retried trace.
        if self.cache.config.parity and not head.cached_parity_ok:
            # The fault is inside the ITR cache (Section 2.4): repair the
            # line with the freshly computed signature and continue.
            # Without per-line parity this case is indistinguishable from
            # a faulty previous instance and falls through to the machine
            # check — the "false machine check" the paper warns about.
            self.stats.cache_faults_repaired += 1
            self.cache.update(start_pc, head.trace.signature,
                              head.trace.length,
                              tainted=head.trace.tainted,
                              writer_seq=head.seq,
                              writer_commit=instructions)
            self._retry_pc = None
            if event is not None:
                event.resolution = "cache_fault_repaired"
            return CommitDecision(CommitAction.PROCEED)
        # The previous instance executed with a fault; architectural state
        # may be corrupt. Abort — or, when the pipeline has a checkpoint
        # unit, roll back to a coarse checkpoint predating the faulty
        # writer (Section 2.3); the decision carries the provenance it
        # needs to pick a safe target and poison the stale line.
        self.stats.machine_checks += 1
        self._retry_pc = None
        if event is not None:
            event.resolution = "machine_check"
        return CommitDecision(CommitAction.MACHINE_CHECK,
                              trace_seq=head.seq,
                              poisoned_pc=start_pc,
                              fault_commit_bound=head.cached_writer_commit)

    def _event_for(self, trace_seq: int) -> Optional[MismatchEvent]:
        for event in reversed(self.events):
            if event.trace_seq == trace_seq:
                return event
        # A retried trace gets a fresh seq; fall back to matching start PC
        # is unnecessary because retried dispatch logs its own event.
        return None

    def note_commit(self, trace_seq: int, is_trace_end: bool,
                    cycle: int = 0, instructions: int = 0) -> None:
        """Called after an instruction actually commits.

        When the trace-terminating instruction retires, the head entry is
        freed; if it had missed, its signature is written to the ITR cache
        (the paper initiates the write when commit polls a set miss bit —
        the trailing edge of the same window). ``instructions`` is the
        cumulative committed count *excluding* the committing instruction;
        the cache line records the count before the writing instance's
        first instruction committed, as the rollback provenance bound.
        """
        head = self.rob.head()
        if head is None or head.seq != trace_seq:
            raise RuntimeError(
                f"ITR ROB head out of sync: committing trace {trace_seq}, "
                f"head is {head.seq if head else None}"
            )
        if self._retry_pc == head.trace.start_pc and head.checked \
                and not head.retry:
            # The retried instance matched: the original execution was the
            # faulty one, and flushing it recovered the fault.
            self.stats.recoveries += 1
            self._retry_pc = None
            for event in reversed(self.events):
                if event.start_pc == head.trace.start_pc \
                        and event.resolution == "retry":
                    event.resolution = "recovered"
                    break
        if is_trace_end:
            if head.missed:
                self.cache.insert(head.trace.start_pc, head.trace.signature,
                                  head.trace.length,
                                  tainted=head.trace.tainted,
                                  writer_seq=head.seq,
                                  checked=head.confirmed_in_flight,
                                  writer_commit=max(
                                      0, instructions
                                      - (head.trace.length - 1)))
            if self.probe is not None:
                self.probe.on_trace_commit(head.seq)
            self.rob.free_head()

    # -------------------------------------------------------------- rollback
    def on_rollback(self, decision: CommitDecision, cycle: int = 0) -> None:
        """A machine-check escalation was converted into a rollback.

        Invalidates the poisoned cache line (its stored signature came from
        the faulty instance and must not survive the rollback) and rewrites
        the event's resolution so campaign ground truth distinguishes
        recovered escalations from true aborts.
        """
        self.stats.rollbacks += 1
        if decision.poisoned_pc is not None:
            self.cache.invalidate(decision.poisoned_pc)
        if decision.trace_seq is not None:
            for event in reversed(self.events):
                if event.trace_seq == decision.trace_seq \
                        and event.resolution == "machine_check":
                    event.resolution = "rollback"
                    break

    # ----------------------------------------------------------------- flush
    def on_flush(self) -> None:
        """Pipeline flush: discard the partial trace and in-flight entries.

        Covers misprediction repair, trap serialization and ITR retry; the
        next decoded instruction latches the redirect PC as the new trace
        start (paper Section 2.2's checkpoint-rollback of the ITR ROB
        collapses to this in a commit-time-recovery pipeline, since commit
        flushes always land on trace boundaries).
        """
        self.generator.flush()
        self.rob.flush()

    # ------------------------------------------------------------ inspection
    def pending_fault_resident(self) -> bool:
        """True when any ITR cache line holds a tainted signature.

        Used at the end of a fault-injection observation window: a
        resident tainted signature means the fault *may* still be detected
        by a future instance — the paper's "MayITR" outcome.
        """
        return any(line.tainted for line in self.cache.valid_lines())
