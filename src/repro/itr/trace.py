"""Trace formation over instruction streams and static programs.

Used by the characterization experiments (paper Figures 1-4, Table 1) and
by the trace-stream coverage simulator. A *trace* is a run of instructions
ending at the first control transfer / trap or at 16 instructions; its
identity is the PC of its first instruction (paper Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..isa.decode_signals import decode
from ..isa.program import Program
from .signature import MAX_TRACE_LENGTH, SignatureGenerator, TraceSignature


@dataclass(frozen=True)
class TraceEvent:
    """One dynamic trace occurrence in an instruction stream."""

    start_pc: int
    length: int
    signature: int = 0


def traces_of_instruction_stream(
        pcs_and_ends: Iterable[Tuple[int, bool]],
        max_length: int = MAX_TRACE_LENGTH) -> Iterator[TraceEvent]:
    """Group a dynamic ``(pc, ends_trace)`` stream into trace events.

    The boolean marks instructions that terminate a trace (control
    transfer or trap). ``max_length`` is the paper's 16-instruction limit
    by default; the trace-length ablation sweeps it.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")
    start_pc: Optional[int] = None
    length = 0
    for pc, ends in pcs_and_ends:
        if length == 0:
            start_pc = pc
        length += 1
        if ends or length >= max_length:
            yield TraceEvent(start_pc=start_pc, length=length)
            length = 0
    if length:
        yield TraceEvent(start_pc=start_pc, length=length)


def static_trace_signature(program: Program, start_pc: int) -> TraceSignature:
    """Compute the fault-free signature of the static trace at ``start_pc``.

    Walks the program text from ``start_pc`` to the first trace-ending
    instruction (or the 16-instruction limit), folding decode signals.
    Trace contents are a pure function of the start PC — the invariant ITR
    relies on.
    """
    generator = SignatureGenerator()
    pc = start_pc
    while True:
        instr = program.instruction_at(pc)
        completed = generator.add(pc, decode(instr))
        if completed is not None:
            return completed
        pc += 8


class TraceProfile:
    """Aggregate statistics of a dynamic trace stream.

    Collects exactly what the paper's characterization needs:

    * per-static-trace dynamic instruction contributions (Figures 1-2)
    * repeat distances in dynamic instructions between successive
      occurrences of the same static trace (Figures 3-4)
    * the static trace count (Table 1)
    """

    def __init__(self) -> None:
        self.dynamic_instructions = 0
        self.dynamic_traces = 0
        self._contribution: Dict[int, int] = {}
        self._last_seen_at: Dict[int, int] = {}
        #: (distance_in_instructions, instructions_in_occurrence) pairs for
        #: every repeat occurrence; first occurrences have no distance.
        self.repeat_samples: List[Tuple[int, int]] = []

    def record(self, event: TraceEvent) -> None:
        """Account one dynamic trace occurrence."""
        key = event.start_pc
        position = self.dynamic_instructions
        previous = self._last_seen_at.get(key)
        if previous is not None:
            self.repeat_samples.append((position - previous, event.length))
        self._last_seen_at[key] = position
        self._contribution[key] = self._contribution.get(key, 0) + event.length
        self.dynamic_instructions += event.length
        self.dynamic_traces += 1

    def record_stream(self, events: Iterable[TraceEvent]) -> None:
        """Account every event of a stream."""
        for event in events:
            self.record(event)

    @property
    def static_traces(self) -> int:
        """Number of distinct static traces observed (paper Table 1)."""
        return len(self._contribution)

    def contributions(self) -> List[int]:
        """Dynamic instructions contributed by each static trace,
        descending — the x-axis walk of paper Figures 1-2."""
        return sorted(self._contribution.values(), reverse=True)

    def cumulative_contribution(self) -> List[float]:
        """Cumulative fraction of dynamic instructions covered by the top-k
        static traces, k = 1..static_traces (paper Figures 1-2)."""
        total = float(self.dynamic_instructions)
        if total == 0:
            return []
        out: List[float] = []
        running = 0
        for contribution in self.contributions():
            running += contribution
            out.append(running / total)
        return out

    def traces_for_coverage(self, coverage: float) -> int:
        """Smallest number of static traces covering ``coverage`` of all
        dynamic instructions (e.g. the paper's "100 static traces
        contribute 99%" claims for bzip)."""
        if not 0 < coverage <= 1:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        for index, fraction in enumerate(self.cumulative_contribution(), 1):
            if fraction >= coverage:
                return index
        return self.static_traces

    def repeat_distance_cdf(self, bin_width: int = 500,
                            num_bins: int = 20) -> List[float]:
        """Fraction of dynamic instructions contributed by trace
        occurrences repeating within each distance bin (Figures 3-4).

        Weights each repeat occurrence by its instruction count and
        normalizes by *all* dynamic instructions, so first occurrences and
        far repeats keep the curve below 100% — matching the paper's
        plots.
        """
        total = float(self.dynamic_instructions)
        if total == 0:
            return [0.0] * num_bins
        bins = [0.0] * num_bins
        for distance, weight in self.repeat_samples:
            index = distance // bin_width
            if index < num_bins:
                bins[index] += weight
        out: List[float] = []
        running = 0.0
        for weight in bins:
            running += weight
            out.append(running / total)
        return out

    def fraction_repeating_within(self, distance: int) -> float:
        """Fraction of dynamic instructions from repeats within
        ``distance`` instructions (the paper's "85% within 5000" style
        claims)."""
        total = float(self.dynamic_instructions)
        if total == 0:
            return 0.0
        weight = sum(w for d, w in self.repeat_samples if d < distance)
        return weight / total
