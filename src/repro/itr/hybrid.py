"""Hybrid ITR + conventional time redundancy (paper Section 3, future work).

The paper sketches a fallback: "redundantly fetch and decode traces only
on a miss in the ITR cache, still achieving the benefits of ITR but
falling back on conventional time redundancy when inherent time
redundancy fails. After the signature of the re-fetched trace is checked
against the ITR cache, instructions in that trace are discarded from the
pipeline."

At the trace-stream level the consequences are exact:

* every ITR cache **miss** triggers one redundant fetch+decode of that
  trace, whose regenerated signature is compared against the one just
  inserted — restoring detection *and* flush-restart recovery for the
  missed instance (under a single-event-upset model, the two decodes of
  the same instance can only disagree if one was faulty);
* recovery-coverage loss therefore drops to zero, and detection loss
  likewise (unreferenced evictions no longer matter: the instance was
  already confirmed at insert time);
* the cost is the redundant frontend bandwidth and energy for exactly the
  missed traces — the quantity this model measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..models.cacti import ICACHE_NJ_PER_ACCESS
from .coverage import CoverageSimulator
from .itr_cache import ItrCacheConfig
from .trace import TraceEvent

_FETCH_GROUP = 4


@dataclass
class HybridResult:
    """Cost/benefit of the hybrid fallback for one stream+config."""

    config: ItrCacheConfig
    benchmark: str = ""
    dynamic_instructions: int = 0
    dynamic_traces: int = 0
    misses: int = 0
    redundant_instructions: int = 0    # re-fetched+re-decoded instructions
    redundant_icache_accesses: int = 0
    baseline_recovery_loss_pct: float = 0.0
    baseline_detection_loss_pct: float = 0.0

    @property
    def redundant_fetch_fraction(self) -> float:
        """Extra frontend work as a fraction of all instructions.

        Pure time redundancy refetches 100%; the hybrid refetches only
        what ITR misses.
        """
        if not self.dynamic_instructions:
            return 0.0
        return self.redundant_instructions / self.dynamic_instructions

    @property
    def redundant_energy_mj(self) -> float:
        """I-cache energy of the redundant fetches (CACTI anchor)."""
        return self.redundant_icache_accesses * ICACHE_NJ_PER_ACCESS * 1e-6

    @property
    def residual_recovery_loss_pct(self) -> float:
        """Recovery loss with the fallback active: zero by construction."""
        return 0.0


def simulate_hybrid(events: Iterable[TraceEvent],
                    config: ItrCacheConfig) -> HybridResult:
    """Run the hybrid scheme over a trace stream.

    Internally runs the plain coverage simulator (the ITR cache behaviour
    is unchanged — the fallback adds work on misses but doesn't alter
    cache contents) and accounts the redundant work per miss.
    """
    simulator = CoverageSimulator(config)
    redundant_instructions = 0
    redundant_accesses = 0
    for event in events:
        before = simulator.result.misses
        simulator.process(event)
        if simulator.result.misses > before:
            redundant_instructions += event.length
            redundant_accesses += -(-event.length // _FETCH_GROUP)
    base = simulator.result
    return HybridResult(
        config=config,
        dynamic_instructions=base.dynamic_instructions,
        dynamic_traces=base.dynamic_traces,
        misses=base.misses,
        redundant_instructions=redundant_instructions,
        redundant_icache_accesses=redundant_accesses,
        baseline_recovery_loss_pct=base.recovery_loss_pct,
        baseline_detection_loss_pct=base.detection_loss_pct,
    )
