"""Fault-coverage accounting over trace streams (paper Section 3).

The paper's coverage metrics are properties of the *dynamic trace stream*
and the ITR cache replacement behaviour alone — no pipeline model needed:

* **Loss in fault detection coverage** (Figure 6): dynamic instructions in
  missed trace instances whose signatures were evicted from the ITR cache
  *before ever being referenced*. A fault in such an instance is never
  compared against anything, so it goes undetected.

* **Loss in fault recovery coverage** (Figure 7): dynamic instructions in
  *every* trace instance that misses in the ITR cache. A missed instance
  enters the cache unchecked; if it was faulty, detection only happens at
  the next instance — after architectural state is already corrupted — so
  flush-and-restart recovery is impossible and the program must be
  aborted.

Detection loss is therefore a subset of recovery loss, which is why the
paper's Figure 6 bars sit well below Figure 7's.

This simulator processes millions of trace events per second, which is
what makes the paper's 18-benchmark × 18-configuration sweep tractable in
Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from .itr_cache import ItrCache, ItrCacheConfig
from .trace import TraceEvent


@dataclass
class CoverageResult:
    """Outcome of running one trace stream against one ITR cache config."""

    config: ItrCacheConfig
    dynamic_instructions: int = 0
    dynamic_traces: int = 0
    hits: int = 0
    misses: int = 0
    detection_loss_instructions: int = 0
    recovery_loss_instructions: int = 0

    @property
    def detection_loss_pct(self) -> float:
        """Figure 6 y-axis: % of all dynamic instructions."""
        if not self.dynamic_instructions:
            return 0.0
        return 100.0 * self.detection_loss_instructions / self.dynamic_instructions

    @property
    def recovery_loss_pct(self) -> float:
        """Figure 7 y-axis: % of all dynamic instructions."""
        if not self.dynamic_instructions:
            return 0.0
        return 100.0 * self.recovery_loss_instructions / self.dynamic_instructions

    @property
    def miss_rate(self) -> float:
        if not self.dynamic_traces:
            return 0.0
        return self.misses / self.dynamic_traces


class CoverageSimulator:
    """Drive an ITR cache with a trace stream and account coverage loss.

    The per-line bookkeeping mirrors Section 2.3: each inserted line
    remembers the instruction count of the instance that wrote it
    (``pending``); a hit clears the pending state (the missed instance is
    now confirmed); an eviction with pending state charges those
    instructions to detection loss.
    """

    def __init__(self, config: ItrCacheConfig):
        self.cache = ItrCache(config)
        self.result = CoverageResult(config=config)
        # Instructions of the *unreferenced missed instance* per resident
        # trace. Keyed by start PC; mirrors the cache's unchecked lines.
        self._pending: Dict[int, int] = {}

    def process(self, event: TraceEvent) -> None:
        """Account one dynamic trace occurrence."""
        result = self.result
        result.dynamic_instructions += event.length
        result.dynamic_traces += 1
        line = self.cache.lookup(event.start_pc)
        if line is not None:
            result.hits += 1
            # The stored (previously missed) instance is now checked; its
            # instructions are no longer at risk of silent loss.
            self._pending.pop(event.start_pc, None)
            return
        result.misses += 1
        # Every miss is a loss in recovery coverage for this instance.
        result.recovery_loss_instructions += event.length
        evicted = self.cache.insert(event.start_pc, event.signature,
                                    event.length)
        if evicted is not None and not evicted.was_checked:
            pending = self._pending.pop(evicted.tag, evicted.length)
            result.detection_loss_instructions += pending
        self._pending[event.start_pc] = event.length

    def process_stream(self, events: Iterable[TraceEvent]) -> CoverageResult:
        """Account every event of a stream; returns the result."""
        for event in events:
            self.process(event)
        return self.result


def measure_coverage(events: Iterable[TraceEvent],
                     config: ItrCacheConfig) -> CoverageResult:
    """One-shot API: run ``events`` against a fresh cache of ``config``."""
    return CoverageSimulator(config).process_stream(events)


#: The paper's Section 3 design-space axes.
PAPER_CACHE_SIZES = (256, 512, 1024)
PAPER_ASSOCIATIVITIES = (1, 2, 4, 8, 16, 0)  # 0 = fully associative


def paper_configs(prefer_checked_eviction: bool = False,
                  policy: str = "lru") -> Iterable[ItrCacheConfig]:
    """Every (size, associativity) point of the paper's Figures 6-7."""
    for entries in PAPER_CACHE_SIZES:
        for assoc in PAPER_ASSOCIATIVITIES:
            yield ItrCacheConfig(
                entries=entries,
                assoc=assoc,
                policy=policy,
                prefer_checked_eviction=prefer_checked_eviction,
            )
