"""Trace signature generation (paper Section 2.1).

Decode signals of successive instructions are bitwise-XORed into a running
64-bit signature until the trace ends — on a branching instruction (any
control transfer or trap, as seen *in the possibly-faulty decode signals*)
or at the 16-instruction limit. On termination the signature, together
with the trace's start PC, is dispatched toward the ITR ROB and the
generator latches the next start PC.

XOR deliberately loses which instruction was faulty; the paper notes this
is acceptable because recovery rolls back to the start of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa.decode_signals import DecodeSignals

#: Maximum instructions per trace (paper Section 1: "a limit of 16").
MAX_TRACE_LENGTH = 16


@dataclass(frozen=True)
class TraceSignature:
    """A completed trace: identity (start PC), signature and length.

    ``tainted`` is simulation-side ground truth — true when a fault was
    injected into any instruction folded into this signature. Hardware
    never sees it; fault-injection campaigns use it to distinguish
    "accessing signature faulty" (recoverable) from "stored signature
    faulty" (detect-only), as in paper Section 4.
    """

    start_pc: int
    signature: int
    length: int
    tainted: bool = False

    def matches(self, other_signature: int) -> bool:
        """Whether this trace's signature equals ``other_signature``."""
        return self.signature == other_signature


class SignatureGenerator:
    """Running XOR of decode-signal vectors with trace-boundary detection.

    ``max_length`` defaults to the paper's 16-instruction limit; the
    trace-length ablation sweeps it.
    """

    __slots__ = ("_start_pc", "_signature", "_length", "_tainted",
                 "traces_completed", "instructions_seen", "max_length")

    def __init__(self, max_length: int = MAX_TRACE_LENGTH) -> None:
        if max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length}")
        self.max_length = max_length
        self._start_pc: Optional[int] = None
        self._signature = 0
        self._length = 0
        self._tainted = False
        self.traces_completed = 0
        self.instructions_seen = 0

    @property
    def in_progress(self) -> bool:
        """True when a partial trace is being accumulated."""
        return self._length > 0

    @property
    def partial_length(self) -> int:
        return self._length

    @property
    def partial_signature(self) -> int:
        return self._signature

    @property
    def partial_start_pc(self) -> Optional[int]:
        return self._start_pc if self._length else None

    def add(self, pc: int, signals: DecodeSignals,
            tainted: bool = False) -> Optional[TraceSignature]:
        """Fold one decoded instruction into the current trace.

        Returns the completed :class:`TraceSignature` when this instruction
        terminates the trace (control transfer, trap, or 16th instruction),
        else ``None``. The first instruction after a reset or a completed
        trace latches the new start PC.
        """
        if self._length == 0:
            self._start_pc = pc
        self._signature ^= signals.pack()
        self._length += 1
        self._tainted = self._tainted or tainted
        self.instructions_seen += 1
        if signals.ends_trace or self._length >= self.max_length:
            return self._complete()
        return None

    def _complete(self) -> TraceSignature:
        trace = TraceSignature(
            start_pc=self._start_pc if self._start_pc is not None else 0,
            signature=self._signature,
            length=self._length,
            tainted=self._tainted,
        )
        self.traces_completed += 1
        self._start_pc = None
        self._signature = 0
        self._length = 0
        self._tainted = False
        return trace

    def flush(self) -> None:
        """Discard any partial trace (pipeline flush: wrong path or retry).

        The next :meth:`add` latches a fresh start PC, which is exactly the
        paper's "a new start PC is latched in preparation for the next
        trace" behaviour after a redirect.
        """
        self._start_pc = None
        self._signature = 0
        self._length = 0
        self._tainted = False
