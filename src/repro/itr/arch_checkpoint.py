"""Architectural checkpoint unit: executable Section 2.3 recovery.

The paper's coarse-grain checkpointing scheme ("take a coarse-grain
checkpoint when there are no unchecked lines in the ITR cache ... recovery
can be done by rolling back to the previously taken coarse-grain
checkpoint instead of aborting the program") exists in this repository
twice: :mod:`repro.itr.checkpointing` *bounds* its effectiveness offline
over trace streams, and this module *executes* it inside the cycle
simulator.

A checkpoint is a snapshot of committed architectural state — PC, the 64
architectural registers, the OS layer (console output length, input
cursor, PRNG) — plus a copy-on-write memory journal. Memory is not copied
at capture time: the unit installs a pre-write observer on the pipeline's
:class:`~repro.arch.state.Memory`, and the first committed store to touch
a page after a capture records that page's pre-image in the *newest*
checkpoint's undo log. Rolling back to checkpoint ``k`` applies the undo
logs newest-first down to ``k`` (older pre-images win), so the cost of a
checkpoint is proportional to the pages actually dirtied after it, not to
the footprint of the program.

Checkpoints live in a bounded ring; capturing past capacity drops the
oldest (after which rolling back before it is impossible — the graceful
degradation the escalation path reports as an abort).

Safety does **not** depend on *when* checkpoints are captured: the
escalation path in :class:`~repro.uarch.pipeline.Pipeline` only accepts a
rollback target whose capture point precedes the first committed
instruction of the faulty trace instance (``newest_preceding``), so even a
checkpoint taken while an unverified instance was resident can never mask
corruption — it is merely useless for faults older than itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from collections import deque

from ..arch.state import ArchState
from ..arch.syscalls import OsLayer
from ..errors import ConfigError


@dataclass
class Checkpoint:
    """One coarse-grain snapshot of committed architectural state."""

    seq: int                     # monotonically increasing capture number
    pc: int                      # next PC to execute after a rollback
    instructions: int            # committed-instruction count at capture
    cycle: int
    regs: Tuple[int, ...]
    os_state: Tuple[int, int, int]
    #: COW undo log: page number -> pre-image captured at the *first*
    #: committed store touching that page after this capture (``None``
    #: means the page did not exist yet and is deleted on rollback).
    pages: Dict[int, Optional[bytes]] = field(default_factory=dict)


@dataclass(frozen=True)
class RollbackRecord:
    """One executed rollback (consumed by campaigns and reports)."""

    cycle: int
    cause: str                   # machine_check / watchdog
    checkpoint_seq: int
    from_instructions: int       # cumulative committed count at rollback
    to_instructions: int         # committed count the checkpoint captured

    @property
    def distance(self) -> int:
        """Committed instructions squashed and re-executed (work lost)."""
        return self.from_instructions - self.to_instructions


class ArchCheckpointUnit:
    """Bounded ring of architectural checkpoints with COW memory journal.

    One unit serves one :class:`~repro.uarch.pipeline.Pipeline` instance;
    construction captures the implicit program-start checkpoint and
    installs the memory write observer.
    """

    def __init__(self, state: ArchState, os_layer: OsLayer,
                 capacity: int = 8):
        if capacity < 1:
            raise ConfigError(
                f"checkpoint ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._state = state
        self._os = os_layer
        self._ring: Deque[Checkpoint] = deque()
        self._next_seq = 0
        self.captures = 0
        self.evicted = 0
        self.rollbacks: List[RollbackRecord] = []
        state.memory.set_write_observer(self._observe_store)
        self.capture(cycle=0, instructions=0)

    # -------------------------------------------------------------- journal
    def _observe_store(self, address: int, size: int) -> None:
        newest = self._ring[-1]
        memory = self._state.memory
        for number in memory.pages_spanned(address, size):
            if number not in newest.pages:
                newest.pages[number] = memory.snapshot_page(number)

    # -------------------------------------------------------------- capture
    def capture(self, cycle: int, instructions: int) -> Checkpoint:
        """Snapshot current committed state as the newest checkpoint."""
        checkpoint = Checkpoint(
            seq=self._next_seq,
            pc=self._state.pc,
            instructions=instructions,
            cycle=cycle,
            regs=self._state.regs.snapshot(),
            os_state=self._os.snapshot(),
        )
        self._next_seq += 1
        self.captures += 1
        if len(self._ring) >= self.capacity:
            self._ring.popleft()
            self.evicted += 1
        self._ring.append(checkpoint)
        return checkpoint

    # ------------------------------------------------------------ inspection
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def newest(self) -> Checkpoint:
        return self._ring[-1]

    @property
    def oldest(self) -> Checkpoint:
        return self._ring[0]

    def checkpoints(self):
        """Iterate resident checkpoints oldest-first (diagnostics)."""
        return iter(self._ring)

    def newest_preceding(self,
                         instructions_bound: Optional[int]
                         ) -> Optional[Checkpoint]:
        """Newest resident checkpoint safe for a fault at ``bound``.

        ``instructions_bound`` is the committed-instruction count *before*
        the faulty trace instance began committing; a checkpoint qualifies
        when its capture point is at or before that bound, so its state
        contains none of the faulty instance's effects. ``None`` (unknown
        provenance, e.g. a watchdog expiry) accepts the newest checkpoint.
        Returns ``None`` when no resident checkpoint qualifies — the
        caller must fall back to a machine-check abort.
        """
        for checkpoint in reversed(self._ring):
            if instructions_bound is None \
                    or checkpoint.instructions <= instructions_bound:
                return checkpoint
        return None

    # -------------------------------------------------------------- rollback
    def rollback(self, target: Checkpoint, cycle: int, cause: str,
                 from_instructions: int) -> RollbackRecord:
        """Restore committed state to ``target`` and make it newest.

        Applies the COW undo logs newest-first down to (and including)
        ``target`` — pages journaled in several epochs converge to the
        oldest applied pre-image, which is exactly the page content at
        ``target``'s capture. Checkpoints younger than ``target`` are
        discarded; ``target``'s own journal restarts empty since committed
        state now equals its snapshot again.
        """
        if target not in self._ring:
            raise ValueError(
                f"checkpoint seq {target.seq} is not resident in the ring")
        memory = self._state.memory
        while True:
            checkpoint = self._ring[-1]
            for number, image in checkpoint.pages.items():
                memory.restore_page(number, image)
            if checkpoint is target:
                break
            self._ring.pop()
        target.pages = {}
        self._state.regs.restore(target.regs)
        self._state.pc = target.pc
        self._os.restore(target.os_state)
        record = RollbackRecord(
            cycle=cycle,
            cause=cause,
            checkpoint_seq=target.seq,
            from_instructions=from_instructions,
            to_instructions=target.instructions,
        )
        self.rollbacks.append(record)
        return record

    def rollback_distances(self) -> List[int]:
        """Distances (in committed instructions) of every rollback taken."""
        return [record.distance for record in self.rollbacks]

    def detach(self) -> None:
        """Remove the memory write observer (end of this unit's life)."""
        self._state.memory.set_write_observer(None)

    def __repr__(self) -> str:
        return (f"ArchCheckpointUnit({len(self._ring)}/{self.capacity} "
                f"checkpoints, {len(self.rollbacks)} rollbacks)")
