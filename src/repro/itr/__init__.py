"""ITR: the paper's contribution — signatures, cache, ROB, controller."""

from .arch_checkpoint import ArchCheckpointUnit, Checkpoint, RollbackRecord
from .controller import (
    CommitAction,
    CommitDecision,
    ItrController,
    ItrStats,
    MismatchEvent,
)
from .coverage import (
    PAPER_ASSOCIATIVITIES,
    PAPER_CACHE_SIZES,
    CoverageResult,
    CoverageSimulator,
    measure_coverage,
    paper_configs,
)
from .itr_cache import Eviction, ItrCache, ItrCacheConfig, ItrCacheLine
from .itr_rob import ItrRob, ItrRobEntry
from .signature import MAX_TRACE_LENGTH, SignatureGenerator, TraceSignature
from .spc import SequentialPcChecker, SpcEvent
from .trace import (
    TraceEvent,
    TraceProfile,
    static_trace_signature,
    traces_of_instruction_stream,
)
from .watchdog import Watchdog, WatchdogEvent

__all__ = [
    "ArchCheckpointUnit",
    "Checkpoint",
    "RollbackRecord",
    "CommitAction",
    "CommitDecision",
    "ItrController",
    "ItrStats",
    "MismatchEvent",
    "PAPER_ASSOCIATIVITIES",
    "PAPER_CACHE_SIZES",
    "CoverageResult",
    "CoverageSimulator",
    "measure_coverage",
    "paper_configs",
    "Eviction",
    "ItrCache",
    "ItrCacheConfig",
    "ItrCacheLine",
    "ItrRob",
    "ItrRobEntry",
    "MAX_TRACE_LENGTH",
    "SignatureGenerator",
    "TraceSignature",
    "SequentialPcChecker",
    "SpcEvent",
    "TraceEvent",
    "TraceProfile",
    "static_trace_signature",
    "traces_of_instruction_stream",
    "Watchdog",
    "WatchdogEvent",
]
