"""The ITR cache (paper Sections 2.2-2.4, 3).

A small PC-indexed set-associative cache of trace signatures:

* indexed by the trace's start PC, tagged with the full PC
* LRU replacement (paper default); optionally the Section 2.3 variant
  that prefers evicting *checked* lines, and tree-PLRU for ablations
* per-line ``checked`` flag: set when a later instance hits and confirms
  the stored signature — an unchecked line that gets evicted is a loss in
  fault *detection* coverage
* optional per-line parity, which lets recovery distinguish a fault inside
  the ITR cache from a faulty previous trace instance (Section 2.4)
* simulation-side ``tainted`` metadata recording whether the instance that
  wrote the line carried an injected fault (ground truth for campaigns)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigError
from ..isa.encoding import INSTRUCTION_BYTES
from ..utils.bitops import flip_bit, parity
from ..utils.lru import make_replacement
from ..utils.stats import Counter


@dataclass
class ItrCacheLine:
    """One stored trace signature plus its bookkeeping state."""

    tag: int = 0                 # full start PC of the trace
    signature: int = 0           # 64-bit XOR of decode-signal vectors
    valid: bool = False
    checked: bool = False        # confirmed by at least one later instance
    parity_bit: int = 0          # even parity of signature at write time
    length: int = 0              # instructions in the writing instance
    tainted: bool = False        # ground truth: writing instance was faulty
    writer_seq: Optional[int] = None  # dynamic trace seq of the writer
    #: Committed-instruction count *before* the writing instance began
    #: committing. The rollback escalation path uses it to pick a
    #: checkpoint that predates the (possibly faulty) writer entirely.
    writer_commit: Optional[int] = None

    def parity_ok(self) -> bool:
        """Recompute parity; False indicates a fault inside the cache."""
        return parity(self.signature) == self.parity_bit


@dataclass(frozen=True)
class Eviction:
    """Result of replacing a line — consumed by coverage accounting."""

    tag: int
    was_checked: bool
    length: int
    tainted: bool
    writer_seq: Optional[int]


@dataclass(frozen=True)
class ItrCacheConfig:
    """Geometry and policy of an ITR cache.

    ``entries`` is the total signature count (paper sweeps 256/512/1024);
    ``assoc`` of 0 means fully associative. ``prefer_checked_eviction``
    enables the Section 2.3 optimization the paper describes but does not
    study (our ablation does). ``parity`` enables Section 2.4 line parity.
    """

    entries: int = 1024
    assoc: int = 2
    policy: str = "lru"
    prefer_checked_eviction: bool = False
    parity: bool = True

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ConfigError(f"entries must be >= 1, got {self.entries}")
        effective = self.assoc if self.assoc else self.entries
        if effective < 1 or self.entries % effective:
            raise ConfigError(
                f"assoc {self.assoc} does not divide entries {self.entries}"
            )
        if self.policy not in ("lru", "plru"):
            raise ConfigError(f"unknown policy {self.policy!r}")
        if self.policy == "plru" and effective & (effective - 1):
            raise ConfigError("plru requires power-of-two associativity")

    @property
    def ways(self) -> int:
        """Effective associativity (entries for fully associative)."""
        return self.assoc if self.assoc else self.entries

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways

    def label(self) -> str:
        """Human label matching the paper's figure axes (dm/2-way/../fa)."""
        if self.assoc == 0 or self.ways == self.entries:
            return "fa"
        if self.ways == 1:
            return "dm"
        return f"{self.ways}-way"


class ItrCache:
    """Set-associative signature cache with hit/miss/eviction accounting."""

    def __init__(self, config: ItrCacheConfig = ItrCacheConfig()):
        self.config = config
        self._sets: List[List[ItrCacheLine]] = [
            [ItrCacheLine() for _ in range(config.ways)]
            for _ in range(config.num_sets)
        ]
        self._repl = [make_replacement(config.policy, config.ways)
                      for _ in range(config.num_sets)]
        self.stats = Counter()
        # Valid-but-unchecked line count, maintained incrementally: the
        # pipeline polls it at every trace commit for the coarse-grain
        # checkpoint condition, so it must not rescan the whole cache.
        self._unchecked = 0

    # ------------------------------------------------------------- indexing
    def _set_index(self, start_pc: int) -> int:
        """Index with the word-aligned start PC (low 3 bits are zero)."""
        return (start_pc // INSTRUCTION_BYTES) % self.config.num_sets

    def _find(self, start_pc: int) -> Tuple[int, Optional[int]]:
        index = self._set_index(start_pc)
        for way, line in enumerate(self._sets[index]):
            if line.valid and line.tag == start_pc:
                return index, way
        return index, None

    # ------------------------------------------------------------ read path
    def lookup(self, start_pc: int) -> Optional[ItrCacheLine]:
        """Dispatch-time read: returns the hit line or ``None`` on miss.

        A hit marks the line *checked* (its stored instance is confirmed by
        the comparison that follows, whatever the outcome) and refreshes
        recency. Counts one read access for the energy model.
        """
        self.stats.add("reads")
        index, way = self._find(start_pc)
        if way is None:
            self.stats.add("misses")
            return None
        self.stats.add("hits")
        line = self._sets[index][way]
        if not line.checked:
            self._unchecked -= 1
            line.checked = True
        self._repl[index].touch(way)
        return line

    def peek(self, start_pc: int) -> Optional[ItrCacheLine]:
        """Side-effect-free probe (no stats, no recency, no checked bit)."""
        _, way = self._find(start_pc)
        if way is None:
            return None
        return self._sets[self._set_index(start_pc)][way]

    # ----------------------------------------------------------- write path
    def insert(self, start_pc: int, signature: int, length: int,
               tainted: bool = False,
               writer_seq: Optional[int] = None,
               checked: bool = False,
               writer_commit: Optional[int] = None) -> Optional[Eviction]:
        """Commit-time write of a missed trace's signature.

        Returns an :class:`Eviction` when a valid line was displaced;
        evictions of *unchecked* lines are the paper's loss in fault
        detection coverage. Counts one write access for the energy model.
        ``checked=True`` installs the line pre-confirmed (used when a
        younger in-flight instance already compared equal against the
        writer via ITR ROB forwarding).
        """
        self.stats.add("writes")
        index, way = self._find(start_pc)
        victim_set = self._sets[index]
        evicted: Optional[Eviction] = None
        if way is None:
            way = self._choose_victim(index)
            victim = victim_set[way]
            if victim.valid:
                self.stats.add("evictions")
                if not victim.checked:
                    self.stats.add("evictions_unchecked")
                evicted = Eviction(
                    tag=victim.tag,
                    was_checked=victim.checked,
                    length=victim.length,
                    tainted=victim.tainted,
                    writer_seq=victim.writer_seq,
                )
        line = victim_set[way]
        if line.valid and not line.checked:
            self._unchecked -= 1
        line.tag = start_pc
        line.signature = signature
        line.valid = True
        line.checked = checked
        line.parity_bit = parity(signature)
        line.length = length
        line.tainted = tainted
        line.writer_seq = writer_seq
        line.writer_commit = writer_commit
        if not checked:
            self._unchecked += 1
        self._repl[index].touch(way)
        return evicted

    def _choose_victim(self, index: int) -> int:
        repl = self._repl[index]
        lines = self._sets[index]
        for way, line in enumerate(lines):
            if not line.valid:
                return way
        if self.config.prefer_checked_eviction and self.config.ways > 1:
            checked = [line.checked for line in lines]
            if any(checked):
                return repl.victim_preferring(checked)
        return repl.victim()

    def update(self, start_pc: int, signature: int, length: int,
               tainted: bool = False,
               writer_seq: Optional[int] = None,
               writer_commit: Optional[int] = None) -> None:
        """Overwrite an existing line in place (retry-recovery path)."""
        index, way = self._find(start_pc)
        if way is None:
            self.insert(start_pc, signature, length, tainted=tainted,
                        writer_seq=writer_seq, writer_commit=writer_commit)
            return
        self.stats.add("writes")
        line = self._sets[index][way]
        if line.checked:
            self._unchecked += 1
        line.signature = signature
        line.checked = False
        line.parity_bit = parity(signature)
        line.length = length
        line.tainted = tainted
        line.writer_seq = writer_seq
        line.writer_commit = writer_commit
        self._repl[index].touch(way)

    def invalidate(self, start_pc: int) -> bool:
        """Drop a line (poisoned-signature rollback, cache-fault recovery)."""
        index, way = self._find(start_pc)
        if way is None:
            return False
        line = self._sets[index][way]
        if line.valid and not line.checked:
            self._unchecked -= 1
        self._sets[index][way] = ItrCacheLine()
        return True

    # ------------------------------------------------------------- fault api
    def inject_fault(self, start_pc: int, bit: int) -> bool:
        """Flip one signature bit of the line holding ``start_pc``.

        Models a single-event upset *inside* the ITR cache (Section 2.4).
        Returns False when the trace is not resident.
        """
        index, way = self._find(start_pc)
        if way is None:
            return False
        line = self._sets[index][way]
        line.signature = flip_bit(line.signature, bit) & ((1 << 64) - 1)
        # parity_bit is left stale on purpose: that is how parity detects it.
        return True

    # ------------------------------------------------------------ inspection
    def contains(self, start_pc: int) -> bool:
        """Whether a valid line for ``start_pc`` is resident."""
        return self.peek(start_pc) is not None

    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(line.valid for lines in self._sets for line in lines)

    def unchecked_lines(self) -> int:
        """Valid-but-unchecked line count; the coarse-grain checkpointing
        extension takes a checkpoint when this reaches zero (Section 2.3).
        O(1): maintained incrementally on every state change."""
        return self._unchecked

    def recount_unchecked(self) -> int:
        """Brute-force recount (tests cross-validate the O(1) counter)."""
        return sum(line.valid and not line.checked
                   for lines in self._sets for line in lines)

    def valid_lines(self) -> List[ItrCacheLine]:
        """All resident lines (diagnostics / campaign residency checks)."""
        return [line for lines in self._sets for line in lines if line.valid]

    def __repr__(self) -> str:
        cfg = self.config
        return (f"ItrCache({cfg.entries} entries, {cfg.label()}, "
                f"{self.occupancy()} valid)")
