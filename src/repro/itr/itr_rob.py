"""The ITR ROB (paper Section 2.2).

A small FIFO holding one entry per in-flight trace. Each entry stores the
trace's start PC and signature plus the control bits ``chk``, ``miss`` and
``retry`` describing the outcome of the dispatch-time ITR cache access.
The paper protects these bits with one-hot encoding (Section 2.4); we
store them through :class:`repro.utils.bitops.OneHot` so single-bit faults
on the control state are detectable rather than silently corrupting the
commit decision.

Entries are dispatched when the decode-side signature generator completes
a trace, polled by commit logic when instructions of that trace retire,
and freed when the trace-terminating instruction commits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from ..errors import ConfigError, ItrRobIntegrityError
from ..utils.bitops import OneHot
from .signature import TraceSignature


@dataclass
class ItrRobEntry:
    """One in-flight trace awaiting commit-side resolution."""

    seq: int                       # dynamic trace sequence number
    trace: TraceSignature
    status: OneHot = field(default_factory=OneHot)  # none/miss/chk/chk_retry
    cached_signature: Optional[int] = None  # ITR cache copy on a hit
    cached_tainted: bool = False   # ground truth taint of the cache copy
    cached_writer_seq: Optional[int] = None
    cached_parity_ok: bool = True
    #: Committed-instruction count before the cache line's writer began
    #: committing (rollback bound; None on forwarded hits — the writer is
    #: still in flight, so none of its instructions have committed).
    cached_writer_commit: Optional[int] = None
    #: A younger in-flight instance compared equal against this (missed)
    #: entry via ITR ROB forwarding: its eventual cache write is already
    #: confirmed and the line can be installed pre-checked.
    confirmed_in_flight: bool = False

    def _state(self) -> str:
        """Decode the one-hot control bits, verifying their integrity.

        Every commit-side read funnels through here: a single-event upset
        on the ``chk``/``miss``/``retry`` bits produces an illegal code
        word (zero or two bits set), which raises
        :class:`~repro.errors.ItrRobIntegrityError` instead of silently
        masquerading as a clean entry (paper Section 2.4).
        """
        if not self.status.is_valid():
            raise ItrRobIntegrityError(self.seq, self.status.code)
        return self.status.state

    @property
    def checked(self) -> bool:
        return self._state() in ("chk", "chk_retry")

    @property
    def missed(self) -> bool:
        return self._state() == "miss"

    @property
    def retry(self) -> bool:
        return self._state() == "chk_retry"

    @property
    def resolved(self) -> bool:
        """True once the dispatch-time ITR cache access has completed.

        The paper stalls commit while neither ``chk`` nor ``miss`` is set.
        """
        return self._state() != "none"

    def mark_miss(self) -> None:
        """Record a dispatch-time ITR cache miss (one-hot 'miss')."""
        self.status.set_state("miss")

    def mark_checked(self, mismatch: bool) -> None:
        """Record a dispatch-time compare: 'chk' or 'chk_retry'."""
        self.status.set_state("chk_retry" if mismatch else "chk")

    def inject_control_fault(self, bit: int) -> None:
        """Flip one control bit (single-event upset inside the ITR ROB)."""
        self.status.inject_fault(bit)


class ItrRob:
    """Bounded FIFO of :class:`ItrRobEntry`.

    Sized "to match the number of branches that could exist in the
    processor" (every branch opens a new trace). Dispatch fails when full,
    which stalls the decode stage.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ConfigError(f"ITR ROB capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: Deque[ItrRobEntry] = deque()
        self._next_seq = 0
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def dispatch(self, trace: TraceSignature) -> Optional[ItrRobEntry]:
        """Append an entry for a completed trace; None when full."""
        if self.full:
            return None
        entry = ItrRobEntry(seq=self._next_seq, trace=trace)
        self._next_seq += 1
        self._entries.append(entry)
        self.high_water = max(self.high_water, len(self._entries))
        return entry

    @property
    def next_seq(self) -> int:
        """Sequence number the next dispatched trace will receive."""
        return self._next_seq

    def head(self) -> Optional[ItrRobEntry]:
        """The oldest in-flight trace (polled by commit logic)."""
        return self._entries[0] if self._entries else None

    def free_head(self) -> ItrRobEntry:
        """Release the head entry (trace-terminating instruction retired)."""
        if not self._entries:
            raise IndexError("freeing from an empty ITR ROB")
        return self._entries.popleft()

    def flush(self) -> None:
        """Discard all in-flight entries (full pipeline flush).

        Sequence numbering continues, so stale references held by squashed
        ROB entries can never alias a post-flush trace.
        """
        self._entries.clear()

    def entries(self):
        """Iterate entries oldest-first (diagnostics and tests)."""
        return iter(self._entries)

    def newest_for_pc(self, start_pc: int,
                      before_seq: int) -> Optional[ItrRobEntry]:
        """Youngest in-flight entry for ``start_pc`` older than
        ``before_seq`` (ITR ROB forwarding: a dispatching trace compares
        against the most recent in-flight instance of itself, closing the
        window between a missed instance's dispatch and its commit-time
        cache write)."""
        for entry in reversed(self._entries):
            if entry.seq < before_seq and entry.trace.start_pc == start_pc:
                return entry
        return None
