"""Coarse-grain checkpointing extension (paper Section 2.3).

"Recovery coverage can be enhanced through a coarse-grained checkpointing
scheme. The key idea is to take a coarse-grain checkpoint when there are
no unchecked lines in the ITR cache. [...] Then in cases where the
lightweight processor flush and restart is not possible, recovery can be
done by rolling back to the previously taken coarse-grain checkpoint
instead of aborting the program."

Trace-stream model: while driving the ITR cache, watch the number of
*unchecked* resident lines; whenever it returns to zero, a checkpoint is
taken at the current instruction position (all resident signatures are
confirmed, so no committed-but-unchecked instance can be hiding a fault
older than this point). For every missed instance — the recovery-loss
population — the scheme converts a would-be program abort into a rollback
to the last checkpoint preceding that instance, provided the instance is
eventually re-referenced (detected) before being evicted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from .coverage import CoverageSimulator
from .itr_cache import ItrCacheConfig
from .trace import TraceEvent


@dataclass
class CheckpointingResult:
    """Effectiveness of coarse-grain checkpointing for one stream+config."""

    config: ItrCacheConfig
    benchmark: str = ""
    dynamic_instructions: int = 0
    checkpoints_taken: int = 0
    #: instructions in missed instances whose later detection can roll
    #: back to a pre-instance checkpoint (abort -> rollback conversions)
    rollback_recoverable_instructions: int = 0
    #: instructions in missed instances evicted unreferenced (still lost)
    unrecoverable_instructions: int = 0
    #: recovery-loss instructions in the baseline (for comparison)
    baseline_recovery_loss_instructions: int = 0
    rollback_distances: List[int] = field(default_factory=list)

    @property
    def mean_checkpoint_interval(self) -> float:
        if self.checkpoints_taken == 0:
            return float("inf")
        return self.dynamic_instructions / self.checkpoints_taken

    @property
    def mean_rollback_distance(self) -> float:
        if not self.rollback_distances:
            return 0.0
        return sum(self.rollback_distances) / len(self.rollback_distances)

    @property
    def recovered_fraction(self) -> float:
        """Share of baseline recovery loss converted to rollbacks."""
        if not self.baseline_recovery_loss_instructions:
            return 0.0
        return (self.rollback_recoverable_instructions
                / self.baseline_recovery_loss_instructions)

    @property
    def residual_recovery_loss_pct(self) -> float:
        """Recovery loss remaining with checkpointing active."""
        if not self.dynamic_instructions:
            return 0.0
        residual = (self.baseline_recovery_loss_instructions
                    - self.rollback_recoverable_instructions)
        return 100.0 * residual / self.dynamic_instructions


def simulate_checkpointing(events: Iterable[TraceEvent],
                           config: ItrCacheConfig) -> CheckpointingResult:
    """Drive the ITR cache, tracking checkpoint opportunities."""
    simulator = CoverageSimulator(config)
    cache = simulator.cache
    result = CheckpointingResult(config=config)
    position = 0                 # instructions so far
    last_checkpoint = 0          # position of the newest checkpoint
    result.checkpoints_taken = 1  # the initial (program start) checkpoint
    # Per resident missed instance: (insert position, pre-insert ckpt).
    pending: Dict[int, tuple] = {}

    for event in events:
        misses_before = simulator.result.misses
        hit = cache.peek(event.start_pc) is not None
        simulator.process(event)
        if hit:
            info = pending.pop(event.start_pc, None)
            if info is not None:
                insert_pos, ckpt_pos = info
                # The missed instance is detected now; rollback to the
                # checkpoint that precedes it recovers the fault.
                length = insert_pos[1]
                result.rollback_recoverable_instructions += length
                result.rollback_distances.append(
                    position + event.length - ckpt_pos)
        elif simulator.result.misses > misses_before:
            pending[event.start_pc] = ((position, event.length),
                                       last_checkpoint)
        position += event.length
        # Checkpoint whenever every resident line is checked.
        if cache.unchecked_lines() == 0 and position != last_checkpoint:
            last_checkpoint = position
            result.checkpoints_taken += 1

    # Anything still pending at stream end was either evicted unreferenced
    # (its entry was replaced in the cache — simulator counted it) or just
    # not yet re-referenced; both stay unrecovered in this accounting.
    result.unrecoverable_instructions = sum(
        insert[1] for insert, _ in pending.values())
    result.dynamic_instructions = simulator.result.dynamic_instructions
    result.baseline_recovery_loss_instructions = \
        simulator.result.recovery_loss_instructions
    return result
