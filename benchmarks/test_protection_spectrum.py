"""Extension bench: the cost/coverage spectrum, measured.

The paper's Section 5 conclusion — ITR and structural duplication are
"two different design points in the cost/coverage spectrum" — run as an
actual experiment: the same fault plan through an unprotected machine,
the ITR machine (monitor and recovery), and a G5-style duplicated
frontend.
"""

from conftest import run_once

from repro.experiments.protection_compare import (
    render_protection_spectrum,
    run_protection_spectrum,
)


def test_protection_spectrum(benchmark, trials, save_report):
    result = run_once(benchmark, lambda: run_protection_spectrum(
        trials=max(8, trials // 3)))
    save_report("protection_spectrum",
                render_protection_spectrum(result))

    none = result.mode("none")
    itr = result.mode("itr")
    recovery = result.mode("itr+recovery")
    duplication = result.mode("duplication")

    # duplication: perfect detection, zero SDC, max cost
    assert duplication.detected_fraction() == 1.0
    assert duplication.sdc_fraction() == 0.0
    assert duplication.area_cm2 > 7 * itr.area_cm2
    # ITR detects the overwhelming majority at a fraction of the cost
    assert itr.detected_fraction() > 0.75
    # recovery reclaims most of the raw SDC impact
    assert recovery.sdc_fraction() < 0.5 * max(none.sdc_fraction(), 0.01) \
        or none.sdc_fraction() == 0.0
    # unprotected machine detects nothing
    assert none.detected_fraction() == 0.0
