"""Figure 2: dynamic instructions vs number of static traces (SPECfp).

Paper claim: floating-point benchmarks are even more repetitive — in
wupwise, 50 static traces contribute 99% of dynamic instructions.
"""

from conftest import run_once

from repro.experiments.characterization import (
    render_fig1_fig2,
    run_characterization,
)


def test_fig2(benchmark, instructions, save_report):
    result = run_once(benchmark, lambda: run_characterization(
        instructions=instructions, category="fp"))
    save_report("fig2_static_trace_cdf_fp", render_fig1_fig2(result, "fp"))

    wupwise = result.by_name("wupwise")
    assert wupwise.contribution_at(50) > 99.0
    art = result.by_name("art")
    assert art.contribution_at(100) > 99.0
    # apsi is the least concentrated FP benchmark in the paper's Figure 2.
    apsi = result.by_name("apsi")
    others = [b for b in result.category("fp") if b.name != "apsi"]
    assert all(apsi.contribution_at(200) <= b.contribution_at(200) + 1.0
               for b in others)
