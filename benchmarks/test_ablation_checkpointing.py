"""Ablation: coarse-grain checkpointing (paper Section 2.3).

Checkpoints taken whenever the ITR cache holds no unchecked lines convert
would-be program aborts (missed-instance faults detected too late) into
bounded rollbacks.
"""

from conftest import run_once

from repro.experiments.ablations import (
    render_checkpointing,
    run_checkpointing_ablation,
)


def test_ablation_checkpointing(benchmark, instructions, save_report):
    results = run_once(benchmark, lambda: run_checkpointing_ablation(
        instructions=instructions))
    save_report("ablation_checkpointing", render_checkpointing(results))

    for result in results:
        assert result.checkpoints_taken >= 1
        assert 0.0 <= result.recovered_fraction <= 1.0
        assert result.residual_recovery_loss_pct >= 0.0
    # rollback recovery reclaims a meaningful share somewhere
    assert any(r.recovered_fraction > 0.3 for r in results)
