"""Shared infrastructure for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index), asserts its headline *shape* against
the paper's claims, and writes the rendered rows to
``benchmarks/results/<name>.txt`` so the regenerated artifacts survive the
run. Expensive intermediate results (the characterization pass, the
Figures 6-7 sweep) are computed once per session and shared.

Scale: synthetic experiments default to 400k instructions per benchmark
(the paper uses 200M — a 500x reduction documented in EXPERIMENTS.md);
fault injection defaults to 40 trials per kernel (paper: 1000 per SPEC
benchmark). Override with ``--itr-instructions`` / ``--itr-trials``.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption("--itr-instructions", type=int, default=400_000,
                     help="dynamic instructions per synthetic benchmark")
    parser.addoption("--itr-trials", type=int, default=40,
                     help="fault injections per kernel (fig8)")
    parser.addoption("--itr-workers", type=str, default=None,
                     help="worker processes for campaign benchmarks "
                          "(int or 'auto'; default: serial)")


@pytest.fixture(scope="session")
def instructions(request):
    return request.config.getoption("--itr-instructions")


@pytest.fixture(scope="session")
def trials(request):
    return request.config.getoption("--itr-trials")


@pytest.fixture(scope="session")
def workers(request):
    return request.config.getoption("--itr-workers")


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def characterization_result(instructions):
    """The Figures 1-4 / Table 1 characterization pass (computed once)."""
    from repro.experiments.characterization import run_characterization
    return run_characterization(instructions=instructions)


class _SweepCache:
    result = None


@pytest.fixture(scope="session")
def sweep_cache():
    return _SweepCache


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
