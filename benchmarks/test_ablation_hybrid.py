"""Ablation: redundant fetch+decode on ITR miss (paper Section 3).

The hybrid fallback removes all recovery-coverage loss at the cost of
refetching exactly the missed traces — far less than the 100% refetch of
pure time redundancy.
"""

from conftest import run_once

from repro.experiments.ablations import render_hybrid, run_hybrid_ablation


def test_ablation_hybrid(benchmark, instructions, save_report):
    results = run_once(benchmark, lambda: run_hybrid_ablation(
        instructions=instructions))
    save_report("ablation_hybrid", render_hybrid(results))

    for result in results:
        assert result.residual_recovery_loss_pct == 0.0
        # the whole point: refetch a small fraction, not 100%
        assert result.redundant_fetch_fraction < 0.5
        assert result.redundant_instructions >= result.misses  # >=1 each
    worst = max(results, key=lambda r: r.baseline_recovery_loss_pct)
    assert worst.benchmark in ("vortex", "perl")
