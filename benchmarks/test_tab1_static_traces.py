"""Table 1: number of static traces per SPEC benchmark.

The synthetic models lay out exactly the paper's static trace counts;
the regenerated table reports both the model footprint (must be exact)
and the number actually observed in this (much shorter) run.
"""

from conftest import run_once

from repro.experiments.characterization import render_table1
from repro.workloads import PAPER_STATIC_TRACES


def test_tab1(benchmark, characterization_result, save_report):
    result = characterization_result
    text = run_once(benchmark, lambda: render_table1(result))
    save_report("tab1_static_traces", text)

    for bench in result.benchmarks:
        assert bench.static_traces_program == \
            PAPER_STATIC_TRACES[bench.name]
        assert bench.static_traces_observed <= bench.static_traces_program
