"""Figure 6: loss in fault detection coverage across the ITR cache grid.

Paper claims reproduced: detection loss for 2-way/1024 averages ~1.3%
with vortex worst (~8%); capacity strongly reduces vortex's direct-mapped
loss; bzip-class benchmarks are excluded from the figure because their
loss is negligible (we verify that separately in the sweep summary).
"""

from conftest import run_once

from repro.experiments.coverage_sweep import render_sweep, run_sweep


def test_fig6(benchmark, instructions, sweep_cache, save_report):
    def compute():
        sweep_cache.result = run_sweep(instructions=instructions)
        return sweep_cache.result

    result = run_once(benchmark, compute)
    save_report("fig6_detection_coverage", render_sweep(result, "detection"))

    # vortex (or perl, its neighbour) worst at the paper's design point
    worst_name, worst = result.max_loss(1024, 2, "detection")
    assert worst_name in ("vortex", "perl")
    assert 3.0 < worst < 20.0           # paper: 8.2%
    # across-benchmark average in the paper's ballpark (1.3%)
    assert result.average_loss(1024, 2, "detection") < 4.0
    # capacity matters for vortex direct-mapped (33% -> 12% in the paper)
    dm256 = result.cell("vortex", 256, 1).detection_loss_pct
    dm1024 = result.cell("vortex", 1024, 1).detection_loss_pct
    assert dm1024 < 0.7 * dm256
