"""Figure 1: dynamic instructions vs number of static traces (SPECint).

Paper claims reproduced here: a relatively small number of static traces
contributes almost all dynamic instructions — e.g. in bzip, 100 static
traces contribute 99%; gcc and vortex are the stragglers.
"""

from conftest import run_once

from repro.experiments.characterization import (
    render_fig1_fig2,
    run_characterization,
)


def test_fig1(benchmark, instructions, save_report):
    result = run_once(benchmark, lambda: run_characterization(
        instructions=instructions, category="int"))
    save_report("fig1_static_trace_cdf_int", render_fig1_fig2(result, "int"))

    bzip = result.by_name("bzip")
    assert bzip.contribution_at(100) > 95.0  # paper: 100 traces -> 99%
    # gcc's enormous static footprint: top-100 covers far less than bzip's.
    gcc = result.by_name("gcc")
    assert gcc.contribution_at(100) < bzip.contribution_at(100)
    # every integer benchmark is strongly concentrated in its top-500
    # (gcc and vortex are the paper's named exceptions; perl sits between
    # them and the pack in the paper's own figure)
    for bench in result.category("int"):
        if bench.name not in ("gcc", "vortex"):
            assert bench.contribution_at(500) > 85.0
