"""Extension bench: maximum trace length ablation (paper fixes 16).

Verifies the paper's implicit claim that 16 is a good operating point:
branches terminate most traces first, so doubling the limit changes
nothing, while shorter limits inflate checking bandwidth.
"""

from conftest import run_once

from repro.experiments.trace_length import (
    render_trace_length,
    run_trace_length_ablation,
)


def test_ablation_trace_length(benchmark, save_report):
    result = run_once(benchmark, run_trace_length_ablation)
    save_report("ablation_trace_length", render_trace_length(result))

    short = result.cell(4)
    paper = result.cell(16)
    double = result.cell(32)
    # limit 32 is essentially identical to the paper's 16
    assert abs(double.itr_reads_per_kinstr - paper.itr_reads_per_kinstr) \
        < 0.05 * paper.itr_reads_per_kinstr
    # limit 4 costs substantially more checking bandwidth
    assert short.itr_reads_per_kinstr > 1.3 * paper.itr_reads_per_kinstr
    # mean trace length is monotone in the limit
    lengths = [result.cell(limit).mean_trace_length
               for limit in (4, 8, 16, 32)]
    assert lengths == sorted(lengths)
