"""Extension bench: ITR's performance overhead (the title claim).

"Low-overhead fault tolerance": attaching the full ITR machinery must
not measurably slow the pipeline — the commit-side protocol overlaps
existing stalls.
"""

from conftest import run_once

from repro.experiments.overhead import (
    render_overhead,
    run_overhead_measurement,
)


def test_overhead(benchmark, save_report):
    result = run_once(benchmark, run_overhead_measurement)
    save_report("overhead", render_overhead(result))

    assert result.mean_overhead_pct() < 1.0
    assert result.max_overhead_pct() < 3.0
    for row in result.rows:
        # the ITR ROB never comes close to its 48-entry default
        assert row.itr_rob_high_water <= 48
