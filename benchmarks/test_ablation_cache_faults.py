"""Extension bench: faults inside the ITR cache (paper Section 2.4).

Quantifies the parity argument: without per-line parity, upsets on
resident signatures become false machine checks; with parity they are
repaired in place and the program completes correctly.
"""

from conftest import run_once

from repro.experiments.cache_fault_study import (
    render_cache_fault_study,
    run_cache_fault_study,
)


def test_ablation_cache_faults(benchmark, trials, save_report):
    result = run_once(benchmark, lambda: run_cache_fault_study(
        trials=max(8, trials // 3)))
    save_report("ablation_cache_faults", render_cache_fault_study(result))

    # parity fully suppresses false machine checks...
    assert result.false_mc_with_parity() == 0.0
    # ...which otherwise occur for a substantial fraction of upsets
    assert result.false_mc_without_parity() > 0.2
    # and the suppressed cases are actively repaired, not just ignored
    assert result.repaired_with_parity() > 0.2
