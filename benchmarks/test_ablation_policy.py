"""Ablation: true LRU vs tree-PLRU replacement in the ITR cache.

Checks the paper's coverage results are not an artifact of exact LRU:
pseudo-LRU must land in the same ballpark.
"""

from conftest import run_once

from repro.experiments.ablations import render_policy, run_policy_ablation


def test_ablation_policy(benchmark, instructions, save_report):
    cells = run_once(benchmark, lambda: run_policy_ablation(
        instructions=instructions))
    save_report("ablation_policy", render_policy(cells))

    for cell in cells:
        slack = 1.0  # absolute percentage points
        assert cell.detection_loss_plru_pct <= \
            2.0 * cell.detection_loss_lru_pct + slack
        assert cell.detection_loss_lru_pct <= \
            2.0 * cell.detection_loss_plru_pct + slack
