"""Parallel campaign engine: serial vs. worker-pool speedup.

Runs a 200-trial fault-injection campaign twice — serially, then on a
4-worker pool — and checks the two contract halves of the parallel
engine:

1. **Determinism** — the exported JSON of the parallel run is
   byte-identical to the serial run (same trials, same seeds, same
   order), per the equivalence guarantee in ``repro.faults.parallel``.
2. **Throughput** — with at least 4 CPUs available, the pooled run is
   at least 2x faster than the serial run. On smaller machines (CI
   smoke runners are often 1-2 cores) the timing assertion is skipped
   but the determinism check still runs, and the measured numbers are
   written to ``benchmarks/results/parallel_speedup.txt`` either way.

A third section records the *pruned* campaign's throughput: one
representative trial per static equivalence class over an exhaustive
slot window, so the effective site-coverage rate (sites/s) exceeds the
raw trial rate by the measured prune ratio. A fourth compares the
static-profile plan (cache-model interpreter, zero warm-up profiling)
against the dynamic-profile plan on both startup cost and trial rate.

Alongside the human-readable report, the measured rates are written to
``benchmarks/results/BENCH_trials_per_sec.json`` so the performance
trajectory is machine-comparable release-over-release.
"""

import json
import os
import pathlib
import time

from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.faults.merge import FaultAggregate
from repro.faults.scheduler import EarlyStopConfig, SchedulerConfig
from repro.workloads.kernels import get_kernel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

TRIALS = 200
OBSERVATION_CYCLES = 12_000
POOL = 4
PRUNED_SLOTS = 200


def _campaign():
    return FaultCampaign(get_kernel("sum_loop"), CampaignConfig(
        trials=TRIALS, seed=20_070_625,
        observation_cycles=OBSERVATION_CYCLES))


def test_parallel_speedup(save_report):
    start = time.perf_counter()
    serial = _campaign().run()
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    pooled = _campaign().run(workers=POOL)
    pooled_s = time.perf_counter() - start

    serial_json = json.dumps(serial.to_dict(), sort_keys=True)
    pooled_json = json.dumps(pooled.to_dict(), sort_keys=True)
    assert pooled_json == serial_json

    speedup = serial_s / pooled_s if pooled_s else float("inf")
    cpus = os.cpu_count() or 1

    # Pruned campaign: one representative per equivalence class over an
    # exhaustively covered slot window — the class weights make each
    # trial stand in for every site in its class.
    campaign = _campaign()
    plan = campaign.pruning_plan(slot_range=(0, PRUNED_SLOTS))
    start = time.perf_counter()
    pruned = campaign.run_pruned(plan=plan, workers=POOL)
    pruned_s = time.perf_counter() - start
    assert pruned.injected_trials == len(plan.classes)
    assert sum(cls["weight"] for cls in pruned.classes) == plan.raw_sites

    # Static-profile pruning: the cache-model interpreter derives the
    # role profile offline, so plan construction skips the ItrProbe
    # warm-up run entirely — the startup saving is the whole point.
    dyn_campaign = _campaign()
    start = time.perf_counter()
    dyn_campaign.pruning_plan(slot_range=(0, PRUNED_SLOTS))
    dynamic_plan_s = time.perf_counter() - start

    static_campaign = _campaign()
    start = time.perf_counter()
    static_plan = static_campaign.pruning_plan(
        slot_range=(0, PRUNED_SLOTS), profile_source="static")
    static_plan_s = time.perf_counter() - start
    start = time.perf_counter()
    static_pruned = static_campaign.run_pruned(plan=static_plan,
                                               workers=POOL)
    static_pruned_s = time.perf_counter() - start
    assert static_pruned.injected_trials == len(static_plan.classes)

    # Scheduler mode: the same campaign through leased work units on the
    # fork-pool backend, and once more with early stopping enabled to
    # measure how many trials the Wilson rule saves at a 5% margin.
    sched_campaign = _campaign()
    start = time.perf_counter()
    scheduled = sched_campaign.run_scheduled(SchedulerConfig(
        backend="fork", workers=POOL, unit_trials=16))
    scheduled_s = time.perf_counter() - start
    assert scheduled.health.ledger_balanced()
    serial_fold = FaultAggregate.fold("sum_loop", serial.trials)
    assert json.dumps(scheduled.aggregate.to_dict(), sort_keys=True) \
        == json.dumps(serial_fold.to_dict(), sort_keys=True)

    start = time.perf_counter()
    stopped = _campaign().run_scheduled(SchedulerConfig(
        backend="fork", workers=POOL, unit_trials=16,
        early_stop=EarlyStopConfig(margin=0.05, min_trials=48)))
    stopped_s = time.perf_counter() - start
    trials_saved = TRIALS - stopped.health.merged_trials

    save_report("parallel_speedup", "\n".join([
        f"parallel campaign engine: {TRIALS} trials, sum_loop, "
        f"{OBSERVATION_CYCLES} observation cycles",
        f"  cpus available : {cpus}",
        f"  serial         : {serial_s:.2f}s "
        f"({TRIALS / serial_s:.1f} trials/s)",
        f"  {POOL} workers      : {pooled_s:.2f}s "
        f"({TRIALS / pooled_s:.1f} trials/s)",
        f"  speedup        : {speedup:.2f}x",
        f"  byte-identical : {pooled_json == serial_json}",
        f"pruned campaign: slots [0, {PRUNED_SLOTS}) x 64 bits, "
        f"sum_loop, same cycles",
        f"  sites covered  : {pruned.raw_sites} in "
        f"{pruned.injected_trials} trials "
        f"({plan.prune_ratio:.1f}x fewer)",
        f"  {POOL} workers      : {pruned_s:.2f}s "
        f"({pruned.injected_trials / pruned_s:.1f} trials/s, "
        f"{pruned.raw_sites / pruned_s:.1f} sites/s effective)",
        f"static-profile pruning: same window, zero-profiling startup",
        f"  plan build     : {static_plan_s:.2f}s static vs "
        f"{dynamic_plan_s:.2f}s dynamic "
        f"({dynamic_plan_s / static_plan_s:.1f}x faster startup)",
        f"  {POOL} workers      : {static_pruned_s:.2f}s "
        f"({static_pruned.injected_trials / static_pruned_s:.1f} "
        f"trials/s, "
        f"{static_pruned.raw_sites / static_pruned_s:.1f} sites/s "
        f"effective)",
        f"scheduler mode: leased work units, {POOL}-worker fork pool, "
        f"16 trials/unit",
        f"  full campaign  : {scheduled_s:.2f}s "
        f"({TRIALS / scheduled_s:.1f} trials/s), "
        f"byte-identical to serial fold",
        f"  early stopping : merged {stopped.health.merged_trials}/"
        f"{TRIALS} trials ({trials_saved} saved) in {stopped_s:.2f}s "
        f"at 5% Wilson margin",
    ]))

    baseline = {
        "benchmark": "sum_loop",
        "trials": TRIALS,
        "observation_cycles": OBSERVATION_CYCLES,
        "pool": POOL,
        "cpus": cpus,
        "serial_trials_per_sec": round(TRIALS / serial_s, 2),
        "pooled_trials_per_sec": round(TRIALS / pooled_s, 2),
        "speedup": round(speedup, 2),
        "pruned_slots": PRUNED_SLOTS,
        "prune_ratio": round(plan.prune_ratio, 2),
        "pruned_trials_per_sec":
            round(pruned.injected_trials / pruned_s, 2),
        "pruned_sites_per_sec": round(pruned.raw_sites / pruned_s, 2),
        "static_plan_build_sec": round(static_plan_s, 3),
        "dynamic_plan_build_sec": round(dynamic_plan_s, 3),
        "static_pruned_trials_per_sec":
            round(static_pruned.injected_trials / static_pruned_s, 2),
        "static_pruned_sites_per_sec":
            round(static_pruned.raw_sites / static_pruned_s, 2),
        "scheduler_trials_per_sec": round(TRIALS / scheduled_s, 2),
        "scheduler_unit_trials": 16,
        "early_stop_margin": 0.05,
        "early_stop_merged_trials": stopped.health.merged_trials,
        "early_stop_trials_saved": trials_saved,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_trials_per_sec.json"
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True)
                    + "\n")

    if cpus >= POOL:
        assert speedup >= 2.0, (
            f"expected >=2x speedup at {POOL} workers on {cpus} CPUs, "
            f"measured {speedup:.2f}x")
