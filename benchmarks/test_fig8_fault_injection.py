"""Figure 8: fault-injection outcome breakdown.

Injects random single-bit decode-signal upsets into every kernel (the
documented stand-in for the paper's SPEC2K runs) and classifies outcomes
against a lockstep golden simulator.

Paper claims reproduced in shape: the large majority of faults are
detected through the ITR cache (paper average 95.4%); most detected
faults are architecturally masked; a substantial fraction are SDCs that
ITR detects in time to recover; undetected SDCs are a small tail.
"""

from conftest import run_once

from repro.experiments.fault_injection import (
    render_figure8,
    run_fault_injection,
)
from repro.faults.outcomes import Outcome


def test_fig8(benchmark, trials, workers, save_report):
    result = run_once(benchmark, lambda: run_fault_injection(
        trials=trials, workers=workers))
    save_report("fig8_fault_injection", render_figure8(result))

    detected = result.average_detected_by_itr()
    assert detected > 0.75              # paper: 95.4%
    # masked-but-detected dominates (paper: 59.4%)
    assert result.average_fraction(Outcome.ITR_MASK) > 0.3
    # recoverable SDCs are a visible slice (paper: 32%)
    assert result.average_fraction(Outcome.ITR_SDC_R) > 0.05
    # undetected SDCs are a small tail (paper: 2.6%)
    assert result.average_fraction(Outcome.UNDET_SDC) < 0.15
