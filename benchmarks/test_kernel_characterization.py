"""Extension bench: the paper's Figs 1/3 analysis on real kernels.

Validates that real executable programs on this ISA exhibit the inherent
time redundancy the paper relies on: tiny static footprints, repeats
within 500 instructions, negligible coverage loss at 1024 signatures.
"""

from conftest import run_once

from repro.experiments.kernel_characterization import (
    render_kernel_characterization,
    run_kernel_characterization,
)


def test_kernel_characterization(benchmark, save_report):
    result = run_once(benchmark, run_kernel_characterization)
    save_report("kernel_characterization",
                render_kernel_characterization(result))

    for kernel in result.kernels:
        assert kernel.within_500_pct > 85.0
        assert kernel.detection_loss_pct < 0.5
        assert kernel.static_traces < 64
        assert 1.0 <= kernel.mean_trace_length <= 16.0
