"""Figure 3: distance between trace repetitions (SPECint).

Paper claims: in all integer benchmarks except perl and vortex, 85% of
dynamic instructions come from traces repeating within 5000 instructions;
four of them reach that within 1000.
"""

from conftest import run_once

from repro.experiments.characterization import (
    render_fig3_fig4,
    run_characterization,
)


def test_fig3(benchmark, instructions, save_report):
    result = run_once(benchmark, lambda: run_characterization(
        instructions=instructions, category="int"))
    save_report("fig3_repeat_distance_int", render_fig3_fig4(result, "int"))

    within_5000 = {b.name: b.within_distance(5000)
                   for b in result.category("int")}
    for name, value in within_5000.items():
        if name not in ("perl", "vortex"):
            assert value > 85.0, f"{name}: {value:.1f}% within 5000"
    # perl and vortex are the paper's far-repeat outliers
    assert within_5000["perl"] < 85.0
    assert within_5000["vortex"] < 85.0
    # at least four benchmarks hit 85% already within 1000 instructions
    fast = [b for b in result.category("int")
            if b.within_distance(1000) > 85.0]
    assert len(fast) >= 4
