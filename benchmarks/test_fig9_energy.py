"""Figure 9: energy of the ITR cache vs redundant I-cache fetches.

Paper claim reproduced: the ITR approach is far cheaper than fetching
every instruction a second time from the I-cache, for every benchmark,
with the published CACTI anchors (0.58/0.84 nJ ITR, 0.87 nJ I-cache).
"""

from conftest import run_once

from repro.experiments.energy_compare import (
    render_figure9,
    run_energy_comparison,
)


def test_fig9(benchmark, instructions, save_report):
    result = run_once(benchmark, lambda: run_energy_comparison(
        instructions=instructions))
    save_report("fig9_energy", render_figure9(result))

    assert len(result.comparisons) == 16
    for comparison in result.comparisons:
        assert comparison.itr_shared_port_mj < comparison.icache_refetch_mj
        assert comparison.itr_split_ports_mj < comparison.icache_refetch_mj
        assert comparison.itr_split_ports_mj > comparison.itr_shared_port_mj
    assert result.average_advantage() > 2.0
