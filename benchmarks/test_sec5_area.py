"""Section 5 area comparison: ITR cache vs duplicating the I-unit.

Paper claim reproduced exactly (die-photo anchored): the G5 I-unit is
2.1 cm^2; the ITR cache is ~0.3 cm^2 — about one seventh.
"""

from conftest import run_once

from repro.experiments.energy_compare import render_area, run_area_comparison


def test_sec5_area(benchmark, save_report):
    comparison = run_once(benchmark, run_area_comparison)
    save_report("sec5_area", render_area(comparison))

    assert comparison.iunit_cm2 == 2.1
    assert 0.2 < comparison.itr_cache_cm2 < 0.35
    assert 6.0 < comparison.ratio < 8.5
