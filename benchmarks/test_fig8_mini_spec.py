"""Extension bench: Figure 8 campaign on synthesized SPEC replicas.

Bridges the documented workload substitution: the same fault-injection
methodology, run on *SPEC-shaped executable code* (scaled replicas of the
calibrated profiles) rather than hand-written kernels. The outcome
structure must match the kernel campaign and the paper: ITR-dominated
detection, masked > recoverable-SDC > everything else.
"""

from conftest import run_once

from repro.experiments.fault_injection import (
    render_figure8,
    run_fault_injection,
)
from repro.faults.outcomes import Outcome
from repro.workloads.program_synth import mini_spec_kernel

MINI_BENCHMARKS = ("bzip", "twolf", "vortex", "swim")


def test_fig8_mini_spec(benchmark, trials, save_report):
    kernels = [mini_spec_kernel(name, target_instructions=8_000)
               for name in MINI_BENCHMARKS]
    result = run_once(benchmark, lambda: run_fault_injection(
        kernels=kernels, trials=max(10, trials // 2),
        observation_cycles=50_000))
    save_report("fig8_mini_spec", render_figure8(result))

    assert result.average_detected_by_itr() > 0.7
    assert result.average_fraction(Outcome.ITR_MASK) > 0.2
    assert result.average_fraction(Outcome.UNDET_SDC) < 0.2
