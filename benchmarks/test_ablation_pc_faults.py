"""Extension bench: PC-fault study (paper Section 2.5, quantified).

The paper argues PC faults mid-trace are detected by the ITR cache while
natural-trace-boundary faults need the commit/sequential-PC check. This
bench injects PC upsets and verifies the sequential-PC check never hurts
and closes undetected-SDC cases.
"""

from conftest import run_once

from repro.experiments.pc_fault_study import (
    render_pc_fault_study,
    run_pc_fault_study,
)


def test_ablation_pc_faults(benchmark, trials, save_report):
    result = run_once(benchmark, lambda: run_pc_fault_study(
        trials=max(10, trials // 2)))
    save_report("ablation_pc_faults", render_pc_fault_study(result))

    # the spc check can only add detection
    assert result.detected_with_spc() >= result.detected_without_spc()
    # and it must not leave more undetected SDCs than the spc-less machine
    assert result.undet_sdc_with_spc() <= result.undet_sdc_without_spc()
