"""Figure 4: distance between trace repetitions (SPECfp).

Paper claim: in all floating-point benchmarks except apsi, nearly all
dynamic instructions come from traces repeating within 1500 instructions.
"""

from conftest import run_once

from repro.experiments.characterization import (
    render_fig3_fig4,
    run_characterization,
)


def test_fig4(benchmark, instructions, save_report):
    result = run_once(benchmark, lambda: run_characterization(
        instructions=instructions, category="fp"))
    save_report("fig4_repeat_distance_fp", render_fig3_fig4(result, "fp"))

    for bench in result.category("fp"):
        value = bench.within_distance(1500)
        if bench.name != "apsi":
            assert value > 85.0, f"{bench.name}: {value:.1f}% within 1500"
    apsi = result.by_name("apsi")
    others = [b.within_distance(1500) for b in result.category("fp")
              if b.name != "apsi"]
    assert apsi.within_distance(1500) < min(others)
