"""Table 2: the decode-signal inventory.

Regenerated from the live ISA definition; total width must be the 64 bits
the paper's signature datapath assumes.
"""

from conftest import run_once

from repro.experiments.characterization import render_table2
from repro.isa.decode_signals import FIELDS, TOTAL_WIDTH


def test_tab2(benchmark, save_report):
    text = run_once(benchmark, render_table2)
    save_report("tab2_decode_signals", text)

    assert TOTAL_WIDTH == 64
    widths = {f.name: f.width for f in FIELDS}
    assert widths == {
        "opcode": 8, "flags": 12, "shamt": 5, "rsrc1": 5, "rsrc2": 5,
        "rdst": 5, "lat": 2, "imm": 16, "num_rsrc": 2, "num_rdst": 1,
        "mem_size": 3,
    }
