"""Figure 7: loss in fault recovery coverage across the ITR cache grid.

Paper claims reproduced: recovery loss always exceeds detection loss
(every miss costs recovery; only unreferenced evictions cost detection);
2-way/1024 averages ~2.5% with vortex worst (~15%).
"""

from conftest import run_once

from repro.experiments.coverage_sweep import render_sweep, run_sweep


def test_fig7(benchmark, instructions, sweep_cache, save_report):
    def compute():
        if sweep_cache.result is None:  # fig6 usually ran first
            sweep_cache.result = run_sweep(instructions=instructions)
        return sweep_cache.result

    result = run_once(benchmark, compute)
    save_report("fig7_recovery_coverage", render_sweep(result, "recovery"))

    for cell in result.cells:
        assert cell.detection_loss_pct <= cell.recovery_loss_pct + 1e-9
    worst_name, worst = result.max_loss(1024, 2, "recovery")
    assert worst_name in ("vortex", "perl")
    assert 8.0 < worst < 35.0           # paper: 15%
    assert result.average_loss(1024, 2, "recovery") < 8.0  # paper: 2.5%
