"""Ablation: checked-preferring eviction (paper Section 2.3, unstudied).

The paper suggests preferring to evict *checked* lines so that unchecked
(detection-critical) signatures survive longer, but does not evaluate it.
This bench does: detection loss must never get worse, and should improve
on the capacity-stressed benchmarks.
"""

from conftest import run_once

from repro.experiments.ablations import (
    render_checked_lru,
    run_checked_lru_ablation,
)


def test_ablation_checked_lru(benchmark, instructions, save_report):
    cells = run_once(benchmark, lambda: run_checked_lru_ablation(
        instructions=instructions))
    save_report("ablation_checked_lru", render_checked_lru(cells))

    assert cells
    total_improvement = sum(c.improvement_pct for c in cells)
    assert total_improvement > 0.0  # helps overall
    # and it should never make detection loss catastrophically worse
    for cell in cells:
        assert cell.detection_loss_checked_pct <= \
            cell.detection_loss_plain_pct + 1.0
