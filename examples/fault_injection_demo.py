#!/usr/bin/env python3
"""Fault-injection campaign demo (paper Section 4 / Figure 8, scaled down).

Injects random single-bit decode-signal upsets into two kernels, runs
each faulty machine in lockstep with a golden simulator, and prints the
outcome breakdown in the paper's categories.

Run:  python examples/fault_injection_demo.py [trials]
"""

import sys

from repro.faults import CampaignConfig, FaultCampaign, FIGURE8_ORDER
from repro.workloads import get_kernel


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    for name in ("strsearch", "dispatch"):
        kernel = get_kernel(name)
        campaign = FaultCampaign(kernel, CampaignConfig(
            trials=trials, verify_recovery=True))
        print(f"\n=== {name}: {trials} injected faults "
              f"({campaign.decode_count} decode slots) ===")
        result = campaign.run()
        for outcome in FIGURE8_ORDER:
            fraction = result.fraction(outcome)
            if fraction:
                bar = "#" * int(round(40 * fraction))
                print(f"  {outcome.value:<12} {100 * fraction:5.1f}%  {bar}")
        print(f"  detected by ITR: "
              f"{100 * result.detected_by_itr_fraction():.1f}% "
              f"(paper average: 95.4%)")
        verified = [t for t in result.trials
                    if t.recovery_verified is not None]
        if verified:
            good = sum(t.recovery_verified for t in verified)
            print(f"  recovery re-verified with the full protocol: "
                  f"{good}/{len(verified)} reconverged with golden")


if __name__ == "__main__":
    main()
