#!/usr/bin/env python3
"""Quickstart: protect a program's fetch/decode units with ITR.

Assembles a small program, runs it on the out-of-order cycle simulator
with the ITR machinery attached, then injects a single-event upset into
the decode signals and watches ITR detect the fault and recover by
flushing and restarting — the paper's headline mechanism, end to end.

Run:  python examples/quickstart.py
"""

from repro.isa import assemble
from repro.arch import FunctionalSimulator
from repro.uarch import build_pipeline

SOURCE = """
.data
greeting: .asciiz "checksum="
.text
main:
    li   $t0, 0              # checksum
    li   $t1, 0              # i
    li   $t2, 1000           # iterations
loop:
    xor  $t3, $t1, $t0
    sll  $t3, $t3, 1
    add  $t0, $t3, $t1
    addi $t1, $t1, 1
    bne  $t1, $t2, loop
    la   $a0, greeting
    li   $v0, 4
    syscall
    move $a0, $t0
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")

    # 1. Golden reference: the architectural answer.
    golden = FunctionalSimulator(program)
    golden.run_silently()
    print(f"golden output         : {golden.output}")

    # 2. Fault-free run on the ITR-protected superscalar pipeline.
    pipeline = build_pipeline(program)
    result = pipeline.run(max_cycles=200_000)
    stats = pipeline.itr.stats
    print(f"pipeline output       : {pipeline.output}  "
          f"({result.instructions} instructions, "
          f"IPC {pipeline.stats.ipc:.2f})")
    print(f"ITR traces dispatched : {stats.traces_dispatched} "
          f"(hits {stats.cache_hits}, misses {stats.cache_misses}, "
          f"mismatches {stats.mismatches})")

    # 3. Inject a single-event upset into one instruction's decode signals
    #    mid-run: flip an immediate bit of the 300th decoded instruction.
    def upset(decode_index, pc, signals):
        if decode_index == 300:
            return signals.with_bit_flipped(42), True  # bit 42 is in imm
        return signals, False

    faulty = build_pipeline(program, decode_tamper=upset)
    result = faulty.run(max_cycles=400_000)
    stats = faulty.itr.stats
    print(f"faulty-run output     : {faulty.output}  ({result.reason})")
    print(f"ITR detection/recovery: mismatches={stats.mismatches} "
          f"retries={stats.retries} recoveries={stats.recoveries}")
    assert faulty.output == golden.output, "recovery failed!"
    print("the injected fault was detected by a trace-signature mismatch "
          "and repaired by flush+restart — output matches golden.")


if __name__ == "__main__":
    main()
