#!/usr/bin/env python3
"""ITR cache design-space exploration (paper Section 3, Figures 6-7).

Sweeps cache size and associativity for a benchmark of your choice,
printing the loss in fault detection and recovery coverage per design
point, plus the area/energy cost of each geometry — the trade-off space a
designer would actually navigate.

Run:  python examples/cache_design_explorer.py [benchmark] [instructions]
      (benchmarks: bzip gap gcc gzip parser perl twolf vortex vpr
                   applu apsi art equake mgrid swim wupwise)
"""

import sys

from repro.itr import ItrCacheConfig, measure_coverage
from repro.models import (
    compare_energy,
    count_accesses,
    energy_per_access_nj,
    itr_cache_area_cm2,
    itr_cache_geometry,
)
from repro.workloads import synthetic_workload


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 300_000
    workload = synthetic_workload(benchmark)
    events = workload.event_list(instructions)
    print(f"benchmark {benchmark}: {workload.static_trace_count} static "
          f"traces, {sum(e.length for e in events)} dynamic instructions\n")

    header = (f"{'config':<12} {'det loss%':>9} {'rec loss%':>9} "
              f"{'miss rate':>9} {'area cm2':>9} {'nJ/access':>9}")
    print(header)
    print("-" * len(header))
    for entries in (256, 512, 1024):
        for assoc in (1, 2, 4, 8, 0):
            config = ItrCacheConfig(entries=entries, assoc=assoc)
            coverage = measure_coverage(events, config)
            area = itr_cache_area_cm2(config)
            energy = energy_per_access_nj(itr_cache_geometry(config))
            label = f"{entries}/{config.label()}"
            print(f"{label:<12} {coverage.detection_loss_pct:>9.2f} "
                  f"{coverage.recovery_loss_pct:>9.2f} "
                  f"{coverage.miss_rate:>9.4f} {area:>9.3f} {energy:>9.2f}")

    # The paper's chosen point, with its energy comparison.
    chosen = ItrCacheConfig(entries=1024, assoc=2)
    coverage = measure_coverage(events, chosen)
    counts = count_accesses(events, coverage)
    energy = compare_energy(benchmark, counts, config=chosen)
    print(f"\npaper's design point (1024 signatures, 2-way):")
    print(f"  detection loss {coverage.detection_loss_pct:.2f}%  "
          f"recovery loss {coverage.recovery_loss_pct:.2f}%")
    print(f"  energy over 200M instructions: ITR "
          f"{energy.itr_shared_port_mj:.1f} mJ vs redundant I-cache "
          f"fetches {energy.icache_refetch_mj:.1f} mJ "
          f"({energy.itr_advantage:.1f}x cheaper)")


if __name__ == "__main__":
    main()
