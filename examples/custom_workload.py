#!/usr/bin/env python3
"""Bring your own workload: characterize and protect a custom program.

Shows the full user workflow on a program *you* write: assemble it,
extract its dynamic trace behaviour (the paper's Figures 1/3 for your
code), pick an ITR cache size from the measured working set, and verify
the protected pipeline runs it correctly.

Run:  python examples/custom_workload.py
"""

from repro.arch import FunctionalSimulator
from repro.isa import assemble, decode
from repro.itr import ItrCacheConfig, TraceProfile, measure_coverage
from repro.itr.trace import TraceEvent, traces_of_instruction_stream
from repro.uarch import PipelineConfig, build_pipeline

# A string-reversal + vowel-count program: branchy, byte-oriented.
SOURCE = """
.data
text: .asciiz "the quick brown fox jumps over the lazy dog"
buf:  .space 64
label: .asciiz "vowels="
.text
main:
    la   $s0, text
    la   $s1, buf
    # find length
    li   $t0, 0
len:
    add  $t1, $s0, $t0
    lbu  $t2, 0($t1)
    beqz $t2, reverse
    addi $t0, $t0, 1
    b    len
reverse:
    move $s2, $t0            # length
    li   $t3, 0              # forward index
rev_loop:
    bge  $t3, $s2, vowels
    sub  $t4, $s2, $t3
    addi $t4, $t4, -1
    add  $t1, $s0, $t4
    lbu  $t2, 0($t1)
    add  $t1, $s1, $t3
    sb   $t2, 0($t1)
    addi $t3, $t3, 1
    b    rev_loop
vowels:
    li   $s3, 0              # vowel count
    li   $t3, 0
vw_loop:
    bge  $t3, $s2, report
    add  $t1, $s1, $t3
    lbu  $t2, 0($t1)
    li   $t5, 'a'
    beq  $t2, $t5, hit
    li   $t5, 'e'
    beq  $t2, $t5, hit
    li   $t5, 'i'
    beq  $t2, $t5, hit
    li   $t5, 'o'
    beq  $t2, $t5, hit
    li   $t5, 'u'
    beq  $t2, $t5, hit
    b    next
hit:
    addi $s3, $s3, 1
next:
    addi $t3, $t3, 1
    b    vw_loop
report:
    la   $a0, label
    li   $v0, 4
    syscall
    move $a0, $s3
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
"""


def main() -> None:
    program = assemble(SOURCE, name="custom")

    # 1. Execute functionally and collect the dynamic trace stream.
    sim = FunctionalSimulator(program)
    pcs_and_ends = []
    while not sim.halted:
        pc = sim.state.pc
        signals = decode(program.instruction_at(pc))
        pcs_and_ends.append((pc, signals.ends_trace))
        sim.step()
    print(f"program output: {sim.output}")

    events = list(traces_of_instruction_stream(pcs_and_ends))
    profile = TraceProfile()
    profile.record_stream(events)
    print(f"dynamic instructions : {profile.dynamic_instructions}")
    print(f"static traces        : {profile.static_traces}")
    print(f"traces covering 99%  : {profile.traces_for_coverage(0.99)}")
    print(f"repeats within 500   : "
          f"{100 * profile.fraction_repeating_within(500):.1f}%")

    # 2. Size the ITR cache from the measured footprint: the smallest
    #    paper-grid config with (near-)zero loss.
    for entries in (256, 512, 1024):
        coverage = measure_coverage(events, ItrCacheConfig(entries=entries,
                                                           assoc=2))
        print(f"  {entries:>4} signatures, 2-way: detection loss "
              f"{coverage.detection_loss_pct:.2f}%, recovery loss "
              f"{coverage.recovery_loss_pct:.2f}%")

    # 3. Run it on the protected pipeline (smallest config — this program
    #    has a tiny static footprint, as most kernels do).
    config = PipelineConfig(itr_cache=ItrCacheConfig(entries=256, assoc=2))
    pipeline = build_pipeline(program, config=config)
    result = pipeline.run(max_cycles=200_000)
    print(f"protected pipeline   : {pipeline.output} ({result.reason}, "
          f"IPC {pipeline.stats.ipc:.2f}, "
          f"{pipeline.itr.stats.traces_dispatched} traces, "
          f"{pipeline.itr.stats.mismatches} mismatches)")
    assert pipeline.output == sim.output


if __name__ == "__main__":
    main()
