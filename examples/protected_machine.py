#!/usr/bin/env python3
"""The high-level API: ProtectedMachine + structured result export.

Runs every kernel on the full protection regimen (ITR + sequential-PC
check + watchdog), prints one consolidated report line per kernel, then
demonstrates fault survival and JSON export of the reports.

Run:  python examples/protected_machine.py
"""

import json

from repro import ProtectedMachine
from repro.experiments.export import dumps
from repro.workloads import all_kernels, get_kernel


def main() -> None:
    print(f"{'kernel':<14} {'outcome':<10} {'instr':>7} {'IPC':>5} "
          f"{'ITR hit%':>8} {'clean':>5}")
    reports = {}
    for kernel in all_kernels():
        machine = ProtectedMachine(kernel.program(), inputs=kernel.inputs)
        report = machine.run(max_cycles=3_000_000)
        assert machine.output == kernel.expected_output, kernel.name
        reports[kernel.name] = report
        print(f"{kernel.name:<14} {report.outcome:<10} "
              f"{report.instructions:>7} {report.ipc:>5.2f} "
              f"{100 * report.itr_hit_rate:>8.1f} "
              f"{'yes' if report.clean else 'NO':>5}")

    # Survive a transient fault, end to end, through the same facade.
    kernel = get_kernel("quicksort")

    def upset(decode_index, pc, signals):
        if decode_index == 700:
            return signals.with_bit_flipped(36), True  # an rdst bit
        return signals, False

    machine = ProtectedMachine(kernel.program(), decode_tamper=upset)
    report = machine.run(max_cycles=3_000_000)
    print(f"\nfault injected into quicksort: outcome={report.outcome}, "
          f"mismatches={report.mismatches_detected}, "
          f"recovered={report.faults_recovered}, "
          f"output correct={machine.output == kernel.expected_output}")

    # Structured export (archival / plotting).
    blob = dumps(reports["quicksort"])
    print("\nJSON export of the quicksort report:")
    print(json.dumps(json.loads(blob), indent=2)[:400], "...")


if __name__ == "__main__":
    main()
